// Tests for the serving scheduler: degenerate FIFO reproduces the old
// compute-reservation model exactly, results are deterministic across runs
// and thread counts, batched dispatch is bit-identical to sequential
// execution, EDF reorders by deadline, admission control bounds the queue,
// no job starves, the batch hold-timer fires on schedule, and the edge
// server sheds overload with an "overloaded:" control reply that clients
// answer by falling back to local execution.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/app.h"
#include "src/core/experiment.h"
#include "src/edge/client_device.h"
#include "src/edge/edge_server.h"
#include "src/nn/models.h"
#include "src/obs/obs.h"
#include "src/serve/scheduler.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace offload::serve {
namespace {

/// Restores the default pool to the environment-derived size on scope exit.
struct PoolGuard {
  ~PoolGuard() { util::set_default_pool_threads(0); }
};

void expect_bit_identical(const nn::Tensor& a, const nn::Tensor& b,
                          const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           static_cast<std::size_t>(a.bytes())))
      << what << ": bits differ";
}

// ---------------------------------------------------------------------------
// Degenerate configuration == the old FIFO compute reservation

TEST(SchedulerTest, FifoDegenerateMatchesHandComputedReservation) {
  sim::Simulation sim;
  SchedulerConfig cfg;  // 1 replica, fifo, batch 1, unbounded
  Scheduler sched(sim, cfg);

  std::vector<RequestTiming> timings;
  for (double busy : {1.0, 0.5, 0.25}) {
    SubmitResult r = sched.submit_opaque(
        busy, [&](const RequestTiming& t) { timings.push_back(t); });
    EXPECT_TRUE(r.admitted);
  }
  sim.run();

  // The old model: start_i = max(arrival, busy_until), served in order.
  ASSERT_EQ(timings.size(), 3u);
  const double starts[] = {0.0, 1.0, 1.5};
  const double ends[] = {1.0, 1.5, 1.75};
  for (int i = 0; i < 3; ++i) {
    const RequestTiming& t = timings[static_cast<std::size_t>(i)];
    EXPECT_DOUBLE_EQ(t.dispatched.to_seconds(), starts[i]) << i;
    EXPECT_DOUBLE_EQ(t.completed.to_seconds(), ends[i]) << i;
    EXPECT_DOUBLE_EQ(t.queue_wait_s, starts[i]) << i;  // submitted at t=0
    EXPECT_DOUBLE_EQ(t.batch_wait_s, 0.0) << i;        // never held
    EXPECT_EQ(t.batch_size, 1) << i;
    EXPECT_EQ(t.replica, 0) << i;
  }
  EXPECT_EQ(sched.stats().launches, 3u);
  EXPECT_EQ(sched.stats().fused_jobs, 0u);
}

TEST(SchedulerTest, UnknownModelRejectedTyped) {
  sim::Simulation sim;
  Scheduler sched(sim, {});
  SubmitResult r = sched.submit_infer(
      "nope", 0, nn::Tensor::zeros(nn::Shape{1}),
      [](nn::Tensor, const RequestTiming&) { FAIL() << "must not run"; });
  EXPECT_FALSE(r.admitted);
  EXPECT_EQ(r.reject.reason, RejectReason::kUnknownModel);
  EXPECT_STREQ(reject_reason_name(r.reject.reason), "unknown_model");
  EXPECT_EQ(sched.stats().rejected, 1u);
}

// ---------------------------------------------------------------------------
// Determinism across runs and thread counts

struct WorkloadResult {
  std::vector<sim::SimTime> completions;  // in submission order
  std::vector<nn::Tensor> outputs;
};

/// A Poisson stream of tiny-CNN partial inferences against a batching EDF
/// scheduler with two replica lanes — every scheduler feature at once.
WorkloadResult run_workload() {
  sim::Simulation sim;
  std::shared_ptr<const nn::Network> net = nn::build_tiny_cnn(17);
  const std::size_t cut = net->index_of("pool2");
  const nn::Shape feature_shape = net->analyze().shapes[cut];

  SchedulerConfig cfg;
  cfg.replicas = 2;
  cfg.max_batch = 4;
  cfg.max_batch_wait = sim::SimTime::millis(5);
  cfg.policy = "edf";
  Scheduler sched(sim, cfg);
  sched.register_model(net);

  constexpr int kJobs = 24;
  WorkloadResult out;
  out.completions.resize(kJobs);
  out.outputs.resize(kJobs, nn::Tensor::zeros(nn::Shape{1}));

  util::Pcg32 rng(99, 7);
  double t = 0;
  for (int i = 0; i < kJobs; ++i) {
    t += rng.uniform(0.0, 0.004);
    const sim::SimTime at = sim::SimTime::seconds(t);
    const sim::SimTime deadline =
        at + sim::SimTime::seconds(rng.uniform(0.01, 0.05));
    nn::Tensor feature =
        nn::Tensor::random_uniform(feature_shape, rng, -1.0f, 1.0f);
    sim.schedule_at(at, [&sched, &net, &out, cut, i, deadline,
                         feature = std::move(feature)] {
      sched.submit_infer(
          net->name(), cut, feature,
          [&out, i](nn::Tensor output, const RequestTiming& timing) {
            out.completions[static_cast<std::size_t>(i)] = timing.completed;
            out.outputs[static_cast<std::size_t>(i)] = std::move(output);
          },
          deadline);
    });
  }
  sim.run();
  return out;
}

TEST(SchedulerTest, DeterministicAcrossRunsAndThreadCounts) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  WorkloadResult a = run_workload();
  WorkloadResult b = run_workload();
  util::set_default_pool_threads(4);
  WorkloadResult c = run_workload();

  for (std::size_t i = 0; i < a.completions.size(); ++i) {
    EXPECT_EQ(a.completions[i], b.completions[i]) << "rerun, job " << i;
    EXPECT_EQ(a.completions[i], c.completions[i]) << "threads, job " << i;
    expect_bit_identical(a.outputs[i], b.outputs[i],
                         "rerun output " + std::to_string(i));
    expect_bit_identical(a.outputs[i], c.outputs[i],
                         "threaded output " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Batched dispatch == sequential execution, bit for bit

TEST(SchedulerTest, BatchedOutputsMatchSequentialBits) {
  sim::Simulation sim;
  std::shared_ptr<const nn::Network> net = nn::build_tiny_cnn(17);
  const std::size_t cut = net->index_of("pool1");
  const nn::Shape feature_shape = net->analyze().shapes[cut];

  SchedulerConfig cfg;
  cfg.max_batch = 3;
  cfg.max_batch_wait = sim::SimTime::seconds(10);
  Scheduler sched(sim, cfg);
  sched.register_model(net);

  util::Pcg32 rng(42, 1);
  std::vector<nn::Tensor> features;
  std::vector<nn::Tensor> outputs(3, nn::Tensor::zeros(nn::Shape{1}));
  std::vector<RequestTiming> timings(3);
  for (int i = 0; i < 3; ++i) {
    features.push_back(
        nn::Tensor::random_uniform(feature_shape, rng, -1.0f, 1.0f));
    sched.submit_infer(net->name(), cut, features.back(),
                       [&outputs, &timings, i](nn::Tensor output,
                                               const RequestTiming& timing) {
                         outputs[static_cast<std::size_t>(i)] =
                             std::move(output);
                         timings[static_cast<std::size_t>(i)] = timing;
                       });
  }
  sim.run();

  for (int i = 0; i < 3; ++i) {
    expect_bit_identical(
        outputs[static_cast<std::size_t>(i)],
        net->forward_rear(features[static_cast<std::size_t>(i)], cut),
        "fused job " + std::to_string(i));
    EXPECT_EQ(timings[static_cast<std::size_t>(i)].batch_size, 3);
  }
  EXPECT_EQ(sched.stats().launches, 1u);   // one fused launch, not three
  EXPECT_EQ(sched.stats().fused_jobs, 3u);
  EXPECT_EQ(sched.stats().largest_batch, 3);
}

// ---------------------------------------------------------------------------
// EDF ordering

/// Submit one blocking job, then three more with deadlines in reverse
/// submission order; return the completion order of the last three.
std::vector<int> completion_order(const std::string& policy) {
  sim::Simulation sim;
  SchedulerConfig cfg;
  cfg.policy = policy;
  Scheduler sched(sim, cfg);

  std::vector<int> order;
  sched.submit_opaque(1.0, [](const RequestTiming&) {});  // occupies the lane
  const double deadlines[] = {3.0, 2.0, 1.0};  // reverse of submission order
  for (int i = 0; i < 3; ++i) {
    sched.submit_opaque(
        0.1, [&order, i](const RequestTiming&) { order.push_back(i); },
        sim::SimTime::seconds(deadlines[i]));
  }
  sim.run();
  return order;
}

TEST(SchedulerTest, EdfDispatchesByDeadlineFifoByArrival) {
  EXPECT_EQ(completion_order("edf"), (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(completion_order("fifo"), (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerTest, NoStarvationUnderMixedDeadlines) {
  // Jobs with no deadline (SimTime::max()) sort after every dated job
  // under EDF, but once arrivals stop the queue drains — nothing is lost.
  sim::Simulation sim;
  SchedulerConfig cfg;
  cfg.policy = "edf";
  Scheduler sched(sim, cfg);

  constexpr int kJobs = 20;
  int completed = 0;
  bool undated_done[kJobs] = {};
  for (int i = 0; i < kJobs; ++i) {
    const bool dated = (i % 2) == 0;
    sched.submit_opaque(
        0.05,
        [&completed, &undated_done, i](const RequestTiming&) {
          ++completed;
          undated_done[i] = true;
        },
        dated ? sim::SimTime::seconds(0.1 * i) : sim::SimTime::max());
  }
  sim.run();
  EXPECT_EQ(completed, kJobs);
  for (int i = 1; i < kJobs; i += 2) {
    EXPECT_TRUE(undated_done[i]) << "undated job " << i << " starved";
  }
  EXPECT_EQ(sched.stats().completed, static_cast<std::uint64_t>(kJobs));
}

// ---------------------------------------------------------------------------
// Admission control

TEST(SchedulerTest, BoundedQueueShedsBeyondCapacity) {
  sim::Simulation sim;
  obs::Obs obs;
  SchedulerConfig cfg;
  cfg.max_queue = 2;
  cfg.obs = &obs;
  Scheduler sched(sim, cfg);

  int admitted = 0;
  int rejected = 0;
  for (int i = 0; i < 5; ++i) {
    SubmitResult r = sched.submit_opaque(1.0, [](const RequestTiming&) {});
    if (r.admitted) {
      ++admitted;
    } else {
      ++rejected;
      EXPECT_EQ(r.reject.reason, RejectReason::kQueueFull);
      EXPECT_EQ(r.reject.queue_depth, 2u);
    }
  }
  // First dispatches immediately (lane idle), two queue, two are shed.
  EXPECT_EQ(admitted, 3);
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(sched.queue_depth(), 2u);
  EXPECT_FALSE(sched.would_admit());
  EXPECT_EQ(sched.stats().rejected, 2u);
  EXPECT_EQ(sched.stats().peak_queue_depth, 2u);
  // The metrics registry mirrors the stats: typed shed counter and the
  // queue-depth gauge (its peak tracks peak_queue_depth exactly).
  EXPECT_EQ(obs.metrics.counter("serve.rejected.queue_full"),
            sched.stats().rejected);
  EXPECT_EQ(obs.metrics.counter("serve.submitted"),
            static_cast<std::uint64_t>(admitted));
  EXPECT_EQ(static_cast<std::uint64_t>(obs.metrics.gauge("serve.queue_depth")),
            sched.queue_depth());
  EXPECT_EQ(
      static_cast<std::uint64_t>(obs.metrics.gauge_peak("serve.queue_depth")),
      sched.stats().peak_queue_depth);
  // Pull accessors (the partition controller's live-telemetry feed) agree
  // with the push-side gauges at every point in time: one busy lane right
  // now, all idle after the queue drains.
  EXPECT_EQ(sched.lanes(), 1);
  EXPECT_EQ(sched.busy_lanes(sim.now()), 1);
  sim.run();
  EXPECT_EQ(sched.stats().completed, 3u);
  EXPECT_EQ(obs.metrics.counter("serve.completed"), 3u);
  EXPECT_EQ(obs.metrics.gauge("serve.queue_depth"), 0);
  EXPECT_EQ(static_cast<std::uint64_t>(obs.metrics.gauge("serve.queue_depth")),
            sched.queue_depth());
  EXPECT_EQ(sched.busy_lanes(sim.now()), 0);
}

// ---------------------------------------------------------------------------
// Batch hold-timer

TEST(SchedulerTest, PartialBatchDispatchesAtMaxBatchWait) {
  sim::Simulation sim;
  std::shared_ptr<const nn::Network> net = nn::build_tiny_cnn(17);
  const std::size_t cut = net->index_of("pool1");
  const nn::Shape feature_shape = net->analyze().shapes[cut];

  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_batch_wait = sim::SimTime::millis(10);
  Scheduler sched(sim, cfg);
  sched.register_model(net);

  util::Pcg32 rng(1, 2);
  std::vector<RequestTiming> timings;
  for (int i = 0; i < 2; ++i) {
    sched.submit_infer(
        net->name(), cut,
        nn::Tensor::random_uniform(feature_shape, rng, -1.0f, 1.0f),
        [&timings](nn::Tensor, const RequestTiming& timing) {
          timings.push_back(timing);
        });
  }
  sim.run();

  // Two of four slots filled: the lane was free the whole time, so the
  // entire pre-dispatch wait is batch-formation time, exactly the
  // configured hold window.
  ASSERT_EQ(timings.size(), 2u);
  for (const RequestTiming& t : timings) {
    EXPECT_EQ(t.dispatched, sim::SimTime::millis(10));
    EXPECT_DOUBLE_EQ(t.queue_wait_s, 0.0);
    EXPECT_DOUBLE_EQ(t.batch_wait_s, 0.010);
    EXPECT_EQ(t.batch_size, 2);
  }
  EXPECT_EQ(sched.stats().launches, 1u);
  // The pull accessor reports the same hold window the per-request
  // timings observed — this is the value the partition controller folds
  // into its queue-wait estimate.
  EXPECT_DOUBLE_EQ(sched.recent_batch_wait_s(), 0.010);
  EXPECT_DOUBLE_EQ(sched.lane_batch_wait_s(0), 0.010);
}

TEST(SchedulerTest, MultipleReplicasRunConcurrently) {
  sim::Simulation sim;
  SchedulerConfig cfg;
  cfg.replicas = 2;
  Scheduler sched(sim, cfg);

  std::vector<RequestTiming> timings;
  for (int i = 0; i < 2; ++i) {
    sched.submit_opaque(
        1.0, [&](const RequestTiming& t) { timings.push_back(t); });
  }
  sim.run();
  ASSERT_EQ(timings.size(), 2u);
  // Both start at t=0 on distinct lanes; neither waits.
  EXPECT_DOUBLE_EQ(timings[0].queue_wait_s, 0.0);
  EXPECT_DOUBLE_EQ(timings[1].queue_wait_s, 0.0);
  EXPECT_NE(timings[0].replica, timings[1].replica);
  EXPECT_EQ(timings[0].completed, sim::SimTime::seconds(1));
  EXPECT_EQ(timings[1].completed, sim::SimTime::seconds(1));
}

// ---------------------------------------------------------------------------
// Edge-server integration: overload shedding

TEST(EdgeServerShedTest, OverloadedSnapshotGetsControlReply) {
  sim::Simulation sim;
  net::ChannelConfig ch;
  ch.a_to_b.latency = sim::SimTime::millis(1);
  ch.b_to_a.latency = sim::SimTime::millis(1);
  auto channel = net::Channel::make(sim, ch);

  obs::Obs obs;
  edge::EdgeServerConfig config;
  // Stretch snapshot restore so back-to-back sends overlap on the lane.
  config.profile.snapshot_parse_Bps = 100.0;
  config.scheduler.max_queue = 1;
  config.obs = &obs;
  edge::EdgeServer server(sim, channel->b(), config);

  std::vector<net::Message> inbox;
  channel->a().set_handler(
      [&inbox](const net::Message& m) { inbox.push_back(m); });

  jsvm::Interpreter scratch;
  scratch.eval_program("var x = 1;");
  jsvm::SnapshotResult snap = jsvm::capture_snapshot(scratch);
  for (int i = 0; i < 3; ++i) {
    edge::SnapshotPayload payload;
    payload.program = snap.program;
    net::Message msg;
    msg.type = net::MessageType::kSnapshot;
    msg.name = "appA";
    msg.payload = payload.encode();
    channel->a().send(std::move(msg));
  }
  sim.run();

  // One executes, one queues, one is shed with a typed control reply.
  EXPECT_EQ(server.stats().snapshots_executed, 2);
  EXPECT_EQ(server.stats().snapshots_shed, 1);
  ASSERT_EQ(inbox.size(), 3u);
  int overloaded = 0;
  for (const net::Message& m : inbox) {
    if (m.type == net::MessageType::kControl) {
      ++overloaded;
      EXPECT_EQ(m.name, "overloaded:appA");
    } else {
      EXPECT_EQ(m.type, net::MessageType::kResultSnapshot);
    }
  }
  EXPECT_EQ(overloaded, 1);
  // The shed counter agrees with the typed control replies on the wire,
  // and the scheduler (inheriting the server's obs_name) exposed its
  // queue depth as a gauge whose peak matches the stats.
  EXPECT_EQ(obs.metrics.counter("server.snapshots_shed"),
            static_cast<std::uint64_t>(overloaded));
  EXPECT_EQ(obs.metrics.counter("server.snapshots_executed"), 2u);
  EXPECT_EQ(obs.metrics.gauge_peak("server.queue_depth"), 1);
  EXPECT_EQ(obs.metrics.gauge("server.queue_depth"), 0);
}

TEST(EdgeServerShedTest, ShedClientFallsBackToLocalExecution) {
  // Three identical clients click at the same instant against a server
  // that admits one pending snapshot: two offload, the third is shed and
  // finishes locally.
  sim::Simulation sim;
  nn::BenchmarkModel model{"TinyCnn", &nn::build_tiny_cnn_default, 17, 32};

  edge::EdgeServerConfig server_config;
  server_config.keep_sessions = false;
  server_config.scheduler.max_queue = 1;

  std::vector<std::unique_ptr<net::Channel>> channels;
  std::unique_ptr<edge::EdgeServer> server;
  std::vector<std::unique_ptr<edge::ClientDevice>> clients;
  constexpr int kClients = 3;
  for (int i = 0; i < kClients; ++i) {
    net::ChannelConfig ch;
    ch.a_to_b.bandwidth_bps = 30e6;
    ch.b_to_a.bandwidth_bps = 30e6;
    channels.push_back(net::Channel::make(
        sim, ch, "client" + std::to_string(i), "edge", 100 + i));
    if (i == 0) {
      server = std::make_unique<edge::EdgeServer>(sim, channels[0]->b(),
                                                  server_config);
    } else {
      server->attach(channels[static_cast<std::size_t>(i)]->b());
    }
  }

  edge::AppBundle prototype = core::make_benchmark_app(model, false);
  const sim::SimTime click =
      core::after_ack_click_time(*prototype.network, false, 0, 30e6) +
      sim::SimTime::seconds(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<edge::ClientDevice>(
        sim, channels[static_cast<std::size_t>(i)]->a(), edge::ClientConfig{},
        core::make_benchmark_app(model, false)));
    clients.back()->start();
    clients.back()->click_at(click);
  }
  sim.run();

  int offloaded = 0;
  int fell_back = 0;
  for (const auto& client : clients) {
    ASSERT_TRUE(client->finished());
    if (client->timeline().local_fallback) {
      ++fell_back;
      EXPECT_FALSE(client->timeline().offloaded);
    } else {
      ++offloaded;
    }
  }
  EXPECT_EQ(server->stats().snapshots_shed, 1);
  EXPECT_EQ(fell_back, 1);
  EXPECT_EQ(offloaded, kClients - 1);
}

}  // namespace
}  // namespace offload::serve
