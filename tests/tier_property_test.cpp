// Property tests for the edge→cloud tier (src/tier): the no-lost-inference
// guarantee under cross-tier fault plans.
//
// Each seed derives a scenario — work stealing on/off, an edge crash, a
// blackout window on the tier links, corrupt migrations, a mid-flight
// drain — and runs a flash crowd of supervised clients against a small
// fleet whose overflow escalates to the cloud. The property: every
// admitted inference completes bit-exact (result text identical to a
// clean local run) — a client that hears a typed failure finishes locally
// with the same bytes, so nothing is ever lost or wrong. A second pass
// re-runs a sample of seeds and demands byte-identical observability
// transcripts across runs and OFFLOAD_THREADS, and the degenerate check
// pins a tier-enabled-but-idle runtime to the tier-less one bit for bit.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/offload.h"
#include "src/obs/export.h"
#include "src/tier/topology.h"
#include "src/util/thread_pool.h"

namespace offload::tier {
namespace {

struct PoolGuard {
  ~PoolGuard() { util::set_default_pool_threads(0); }
};

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

/// The text every inference must produce, wherever it ends up running
/// (local fallback, origin edge, stolen peer, or the cloud).
std::string expected_result_text() {
  edge::AppBundle bundle = core::make_benchmark_app(tiny_model(), false);
  core::RuntimeConfig config;
  config.client.offload = false;
  config.tier.ignore_env = true;
  core::OffloadingRuntime runtime(config, std::move(bundle));
  return runtime.run().result_text;
}

/// One cross-tier fault scenario, every knob a pure function of the seed.
struct Scenario {
  std::uint64_t seed = 1;
  bool steal = false;
  bool crash_edge = false;   ///< edge 0 crashes just after the flash crowd
  bool blackout = false;     ///< tier links drop everything for a window
  bool corrupt = false;      ///< tier links corrupt migrated payloads
  bool queue_deadline = false;  ///< edges expire queued jobs (escalation)
  bool drain = false;        ///< migrate edge 0's queue mid-flight
  bool drain_to_cloud = false;
  /// Unbounded admission queue: backlog builds (work stealing and queue
  /// deadlines bite) instead of shedding at admission (escalation bites).
  bool deep_queue = false;
  std::uint32_t crash_delay_ms = 1;
  std::uint32_t blackout_start_ms = 0;
  std::uint32_t blackout_ms = 100;
};

Scenario make_scenario(std::uint64_t seed) {
  util::Pcg32 rng(seed);
  Scenario s;
  s.seed = seed;
  s.steal = (rng.next_u32() & 1) != 0;
  // Fault families: every seed gets at least one, a quarter get them all.
  const std::uint32_t mode = rng.next_below(4);
  s.crash_edge = mode == 0 || mode == 3;
  s.blackout = mode == 1 || mode == 3;
  s.corrupt = mode == 2 || mode == 3;
  s.queue_deadline = rng.next_below(3) == 0;
  s.drain = rng.next_below(3) == 0;
  s.drain_to_cloud = (rng.next_u32() & 1) != 0;
  s.crash_delay_ms = 1 + rng.next_below(60);
  s.blackout_start_ms = rng.next_below(50);
  s.blackout_ms = 100 + rng.next_below(500);
  s.deep_queue = rng.next_below(3) == 0;
  return s;
}

struct Outcome {
  int finished = 0;
  int matched = 0;  ///< result text identical to the clean run
  Topology::Stats tier;
  int escalated = 0;  ///< edge-side snapshots_escalated, both edges
  std::string transcript;
};

Outcome run_scenario(const Scenario& s, const std::string& expected) {
  sim::Simulation sim;
  obs::Obs obs;
  const nn::BenchmarkModel model = tiny_model();
  edge::AppBundle prototype = core::make_benchmark_app(model, false);
  const sim::SimTime click =
      core::after_ack_click_time(*prototype.network, false, 0, 30e6) +
      sim::SimTime::seconds(2);

  fault::FaultPlanConfig faults;
  faults.seed = s.seed;
  if (s.corrupt) {
    // Installed on the tier channels only (via TierConfig::on_channel):
    // corrupt *migrations*, not client traffic.
    faults.uplink.corrupt_rate = 0.15;
    faults.downlink.corrupt_rate = 0.15;
  }
  if (s.blackout) {
    fault::BlackoutSpec b;
    b.start = click + sim::SimTime::millis(s.blackout_start_ms);
    b.duration = sim::SimTime::millis(s.blackout_ms);
    faults.blackouts.push_back(b);
  }
  if (s.crash_edge) {
    fault::CrashSpec crash;
    crash.first_at = click + sim::SimTime::millis(s.crash_delay_ms);
    crash.downtime = sim::SimTime::seconds(3);
    faults.crashes.push_back(crash);
  }
  fault::FaultInjector injector(sim, faults);

  fleet::FleetConfig fleet_config;
  fleet_config.size = 2;
  fleet_config.dedup = true;
  fleet_config.server.ack_snapshots = true;  // supervised clients
  fleet_config.server.scheduler.max_queue = s.deep_queue ? 0 : 1;
  if (s.queue_deadline) {
    fleet_config.server.queue_deadline = sim::SimTime::millis(40);
  }
  // Stretch restores so the flash crowd actually queues and overflows.
  fleet_config.server.profile.snapshot_parse_Bps = 40e3;
  fleet_config.obs = &obs;
  fleet::EdgeFleet fleet(sim, fleet_config);

  constexpr int kClients = 5;
  std::vector<fleet::EdgeFleet::ClientLink> links;
  std::vector<std::unique_ptr<edge::ClientDevice>> clients;
  links.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    const std::string name = "client" + std::to_string(i);
    links.push_back(fleet.connect_client(name));
    edge::ClientConfig config;
    config.supervisor.enabled = true;
    config.obs = &obs;
    fleet.configure_client(config, links.back(), name);
    clients.push_back(std::make_unique<edge::ClientDevice>(
        sim, *links.back().endpoints[0], config,
        core::make_benchmark_app(model, false)));
    for (std::size_t k = 1; k < links.back().endpoints.size(); ++k) {
      clients.back()->attach_server(*links.back().endpoints[k]);
    }
  }

  TierConfig tier_config;
  tier_config.obs = &obs;
  tier_config.steal = s.steal;
  tier_config.steal_seed = s.seed;
  tier_config.on_channel = [&injector](net::Channel& channel) {
    injector.attach_channel(channel);
  };
  Topology topology(sim, fleet, std::move(tier_config));
  if (s.crash_edge) injector.attach_server(fleet.server(0));
  if (s.drain) {
    sim.schedule_at(click + sim::SimTime::millis(60), [&] {
      topology.drain(0, s.drain_to_cloud ? Topology::kCloud : 1);
    });
  }

  for (auto& client : clients) {
    client->start();
    client->click_at(click);
  }
  sim.run();

  Outcome out;
  for (const auto& client : clients) {
    if (client->finished()) ++out.finished;
    if (client->result_text() == expected) ++out.matched;
  }
  out.tier = topology.stats();
  out.escalated = fleet.server(0).stats().snapshots_escalated +
                  fleet.server(1).stats().snapshots_escalated;
  out.transcript = obs::to_jsonl(obs.trace) + obs.metrics.dump_text();
  return out;
}

TEST(TierProperty, NoInferenceLostAcross200SeedCrossTierFaultPlans) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  const std::string expected = expected_result_text();
  ASSERT_FALSE(expected.empty());
  Topology::Stats total;
  int escalated = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario s = make_scenario(seed);
    const Outcome out = run_scenario(s, expected);
    ASSERT_EQ(out.finished, 5) << "seed " << seed << " lost an inference";
    ASSERT_EQ(out.matched, 5)
        << "seed " << seed << " produced a result that diverged bit-wise";
    total.escalations += out.tier.escalations;
    total.steals += out.tier.steals;
    total.drained += out.tier.drained;
    total.relays_completed += out.tier.relays_completed;
    total.relays_failed += out.tier.relays_failed;
    total.results_dropped += out.tier.results_dropped;
    total.model_pushes += out.tier.model_pushes;
    escalated += out.escalated;
  }
  // The grid must actually exercise the machinery it claims to test: jobs
  // climbed the tier, relays completed, some failed typed, and some
  // origins died under a completed relay (the epoch guard fired).
  EXPECT_GT(total.escalations, 0);
  EXPECT_GT(total.drained, 0);
  EXPECT_GT(total.relays_completed, 0);
  EXPECT_GT(total.relays_failed, 0);
  EXPECT_GT(total.model_pushes, 0);
  EXPECT_EQ(escalated, total.escalations);
}

TEST(TierProperty, StealingMovesWorkAndLosesNothing) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  const std::string expected = expected_result_text();
  // Pure load imbalance, no faults: four clients pinned to edge 0 while
  // edge 1 sits idle. The steal ticks must move backlog to the idle peer
  // on the seeded schedule — and nothing may be lost in the process.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Simulation sim;
    obs::Obs obs;
    const nn::BenchmarkModel model = tiny_model();
    edge::AppBundle prototype = core::make_benchmark_app(model, false);
    const sim::SimTime click =
        core::after_ack_click_time(*prototype.network, false, 0, 30e6) +
        sim::SimTime::seconds(2);

    fleet::FleetConfig fleet_config;
    fleet_config.size = 2;
    fleet_config.server.ack_snapshots = true;
    fleet_config.server.profile.snapshot_parse_Bps = 40e3;
    fleet_config.obs = &obs;
    fleet::EdgeFleet fleet(sim, fleet_config);

    constexpr int kClients = 4;
    std::vector<fleet::EdgeFleet::ClientLink> links;
    std::vector<std::unique_ptr<edge::ClientDevice>> clients;
    for (int i = 0; i < kClients; ++i) {
      links.push_back(fleet.connect_client("client" + std::to_string(i)));
      edge::ClientConfig config;
      config.supervisor.enabled = true;
      config.obs = &obs;
      // No configure_client: everyone pins to edge 0 — maximal imbalance.
      clients.push_back(std::make_unique<edge::ClientDevice>(
          sim, *links.back().endpoints[0], config,
          core::make_benchmark_app(model, false)));
      for (std::size_t k = 1; k < links.back().endpoints.size(); ++k) {
        clients.back()->attach_server(*links.back().endpoints[k]);
      }
    }

    TierConfig tier_config;
    tier_config.obs = &obs;
    tier_config.steal = true;
    tier_config.steal_seed = seed;
    tier_config.escalation_budget = sim::SimTime::seconds(10);
    Topology topology(sim, fleet, std::move(tier_config));

    for (auto& client : clients) {
      client->start();
      client->click_at(click);
    }
    sim.run();

    EXPECT_GT(topology.stats().steals, 0) << "seed " << seed;
    EXPECT_EQ(topology.stats().steals, topology.stats().relays_completed)
        << "seed " << seed;
    EXPECT_EQ(fleet.server(1).stats().snapshots_executed,
              topology.stats().steals)
        << "seed " << seed;
    for (const auto& client : clients) {
      ASSERT_TRUE(client->finished()) << "seed " << seed;
      EXPECT_EQ(client->result_text(), expected) << "seed " << seed;
      // Stolen or not, the client never saw anything but its own edge.
      EXPECT_EQ(client->timeline().server_index, 0) << "seed " << seed;
    }
  }
}

TEST(TierProperty, TranscriptByteIdenticalAcrossRunsAndThreadCounts) {
  PoolGuard guard;
  const std::string expected = [] {
    util::set_default_pool_threads(1);
    return expected_result_text();
  }();
  for (std::uint64_t seed : {3ull, 57ull, 120ull}) {
    const Scenario s = make_scenario(seed);
    util::set_default_pool_threads(1);
    const Outcome first = run_scenario(s, expected);
    const Outcome again = run_scenario(s, expected);
    util::set_default_pool_threads(4);
    const Outcome threaded = run_scenario(s, expected);
    ASSERT_EQ(first.transcript, again.transcript)
        << "seed " << seed << " is not run-to-run deterministic";
    ASSERT_EQ(first.transcript, threaded.transcript)
        << "seed " << seed << " depends on OFFLOAD_THREADS";
  }
}

TEST(TierProperty, IdleTierLeavesDegenerateRunByteIdentical) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  // Tier constructed but never exercised (no overflow, no faults, no
  // drain): every client-visible byte — result, timeline, trace, metrics
  // — must match the tier-less runtime exactly.
  auto run_once = [](bool tier_on, obs::Obs* obs) {
    edge::AppBundle bundle = core::make_benchmark_app(tiny_model(), false);
    core::RuntimeConfig config;
    config.client.supervisor.enabled = true;
    config.fleet.dedup = true;
    config.tier.ignore_env = true;
    config.tier.enabled = tier_on;
    config.click_at =
        core::after_ack_click_time(*bundle.network, false, 0, 30e6);
    config.obs = obs;
    core::OffloadingRuntime runtime(config, std::move(bundle));
    return runtime.run();
  };
  obs::Obs without;
  const core::RunResult off = run_once(false, &without);
  obs::Obs with;
  const core::RunResult on = run_once(true, &with);
  EXPECT_EQ(on.result_text, off.result_text);
  EXPECT_EQ(on.inference_seconds, off.inference_seconds);
  EXPECT_EQ(on.offloaded, off.offloaded);
  EXPECT_EQ(obs::to_jsonl(with.trace), obs::to_jsonl(without.trace));
  EXPECT_EQ(with.metrics.dump_text(), without.metrics.dump_text());
}

TEST(TierProperty, DrainMigratesQueuedJobsTransparently) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  const std::string expected = expected_result_text();
  // Three clients pinned to edge 0 (no balancer hook), restores slowed so
  // two jobs sit queued when drain() fires: they finish on edge 1 while
  // the clients keep talking to — and believing in — edge 0.
  sim::Simulation sim;
  obs::Obs obs;
  const nn::BenchmarkModel model = tiny_model();
  edge::AppBundle prototype = core::make_benchmark_app(model, false);
  const sim::SimTime click =
      core::after_ack_click_time(*prototype.network, false, 0, 30e6) +
      sim::SimTime::seconds(2);

  fleet::FleetConfig fleet_config;
  fleet_config.size = 2;
  fleet_config.server.ack_snapshots = true;
  fleet_config.server.profile.snapshot_parse_Bps = 10e3;  // slow restores
  fleet_config.obs = &obs;
  fleet::EdgeFleet fleet(sim, fleet_config);

  constexpr int kClients = 3;
  std::vector<fleet::EdgeFleet::ClientLink> links;
  std::vector<std::unique_ptr<edge::ClientDevice>> clients;
  for (int i = 0; i < kClients; ++i) {
    links.push_back(fleet.connect_client("client" + std::to_string(i)));
    edge::ClientConfig config;
    config.supervisor.enabled = true;
    config.obs = &obs;
    // No configure_client: every client stays pinned to edge 0, so the
    // queue builds there and edge 1 is reachable only through the tier.
    clients.push_back(std::make_unique<edge::ClientDevice>(
        sim, *links.back().endpoints[0], config,
        core::make_benchmark_app(model, false)));
    for (std::size_t k = 1; k < links.back().endpoints.size(); ++k) {
      clients.back()->attach_server(*links.back().endpoints[k]);
    }
  }

  TierConfig tier_config;
  tier_config.obs = &obs;
  // Slowed restores make each migrated execution take seconds; give the
  // relays room (still inside the supervisor's 15 s execute deadline).
  tier_config.escalation_budget = sim::SimTime::seconds(10);
  Topology topology(sim, fleet, std::move(tier_config));
  std::size_t moved = 0;
  sim.schedule_at(click + sim::SimTime::millis(80),
                  [&] { moved = topology.drain(0, 1); });

  for (auto& client : clients) {
    client->start();
    client->click_at(click);
  }
  sim.run();

  EXPECT_EQ(moved, 2u);  // one executing stays, two queued jobs migrate
  EXPECT_EQ(topology.stats().drained, 2);
  EXPECT_EQ(topology.stats().relays_completed, 2);
  EXPECT_EQ(fleet.server(0).stats().jobs_migrated, 2);
  EXPECT_EQ(fleet.server(1).stats().snapshots_executed, 2);
  for (const auto& client : clients) {
    ASSERT_TRUE(client->finished());
    EXPECT_EQ(client->result_text(), expected);
    // Transparent: the client still believes its own edge served it.
    EXPECT_EQ(client->timeline().server_index, 0);
    EXPECT_TRUE(client->timeline().offloaded);
    EXPECT_EQ(client->supervisor_stats().redirects, 0);
  }
}

TEST(TierProperty, DrainRedirectsDifferentialJobsToThePeer) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  const std::string expected = expected_result_text();
  // Client B establishes a session on edge 0 (first inference), then
  // offloads a *differential* snapshot that lands in the queue behind a
  // blocker. drain(0, 1) cannot relay it — only edge 0's realm can apply
  // the diff — so B is redirected: its supervisor re-targets edge 1,
  // re-presends, replays, and the inference still finishes bit-exact.
  sim::Simulation sim;
  obs::Obs obs;
  const nn::BenchmarkModel model = tiny_model();
  edge::AppBundle prototype = core::make_benchmark_app(model, false);
  const sim::SimTime click =
      core::after_ack_click_time(*prototype.network, false, 0, 30e6) +
      sim::SimTime::seconds(2);

  fleet::FleetConfig fleet_config;
  fleet_config.size = 2;
  fleet_config.server.ack_snapshots = true;
  fleet_config.server.profile.snapshot_parse_Bps = 10e3;
  fleet_config.obs = &obs;
  fleet::EdgeFleet fleet(sim, fleet_config);

  auto make_client = [&](bool differential) {
    fleet::EdgeFleet::ClientLink link = fleet.connect_client(
        differential ? std::string("clientB") : std::string("clientA"));
    edge::ClientConfig config;
    config.supervisor.enabled = true;
    config.differential_snapshots = differential;
    config.obs = &obs;
    auto client = std::make_unique<edge::ClientDevice>(
        sim, *link.endpoints[0], config,
        core::make_benchmark_app(model, false));
    for (std::size_t k = 1; k < link.endpoints.size(); ++k) {
      client->attach_server(*link.endpoints[k]);
    }
    return client;
  };
  auto blocker = make_client(false);
  auto repeat = make_client(true);

  TierConfig tier_config;
  tier_config.obs = &obs;
  Topology topology(sim, fleet, std::move(tier_config));

  // B's first inference runs alone and finishes, leaving a session realm
  // on edge 0. Then the blocker occupies the lane and B's differential
  // follow-up queues behind it; the drain fires while it waits.
  blocker->start();
  repeat->start();
  repeat->click_at(click);
  const sim::SimTime second = click + sim::SimTime::seconds(8);
  blocker->click_at(second);
  repeat->click_at(second + sim::SimTime::millis(30));
  std::size_t moved = 0;
  sim.schedule_at(second + sim::SimTime::millis(200),
                  [&] { moved = topology.drain(0, 1); });
  sim.run();

  EXPECT_EQ(moved, 1u);
  EXPECT_EQ(topology.stats().redirects, 1);
  EXPECT_EQ(topology.stats().drained, 0);
  ASSERT_TRUE(blocker->finished());
  ASSERT_TRUE(repeat->finished());
  EXPECT_EQ(blocker->result_text(), expected);
  EXPECT_EQ(repeat->result_text(), expected);
  EXPECT_EQ(repeat->supervisor_stats().redirects, 1);
  // The redirected client really moved: its last inference ran on edge 1.
  EXPECT_EQ(repeat->timeline().server_index, 1);
}

}  // namespace
}  // namespace offload::tier
