// Accounting reconciliation between the span tree and InferenceBreakdown.
//
// The runtime derives every breakdown from the trace
// (core::breakdown_from_trace), so the two cannot drift by construction.
// This property test closes the remaining gap: across a grid of
// configurations it recomputes each breakdown category from raw leaf-span
// sums — bypassing the derivation's own bookkeeping — and demands exact
// (==, not near) agreement, then checks the span trees are well formed:
// every span closed, no orphan parents, phase children inside their
// parents, and no two units of work overlapping on one serial resource.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/core/offload.h"
#include "src/core/trace_breakdown.h"
#include "src/nn/kernels.h"
#include "src/obs/obs.h"

namespace offload::core {
namespace {

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

struct TracedRun {
  RunResult result;
  obs::Obs obs;
  std::string label;
};

/// Mirror of run_scenario's config construction, with an external obs sink.
void run_traced(Scenario scenario, const ScenarioOptions& options,
                TracedRun& out) {
  const bool partial = scenario == Scenario::kOffloadPartial;
  edge::AppBundle bundle =
      make_benchmark_app(tiny_model(), partial, options.image_seed);

  RuntimeConfig config;
  config.channel.a_to_b.bandwidth_bps = options.bandwidth_bps;
  config.channel.a_to_b.latency = options.latency;
  config.channel.b_to_a.bandwidth_bps = options.bandwidth_bps;
  config.channel.b_to_a.latency = options.latency;
  switch (scenario) {
    case Scenario::kClientOnly:
      config.client.offload = false;
      config.client.presend_model = false;
      config.click_at = sim::SimTime::seconds(0.05);
      break;
    case Scenario::kOffloadBeforeAck:
      config.client.offload = true;
      config.client.presend_model = true;
      config.client.offload_event = "click";
      config.click_at = sim::SimTime::seconds(0.05);
      break;
    case Scenario::kOffloadAfterAck:
      config.client.offload = true;
      config.client.presend_model = true;
      config.client.offload_event = "click";
      config.click_at = after_ack_click_time(*bundle.network, false, 0,
                                             options.bandwidth_bps);
      break;
    case Scenario::kOffloadPartial: {
      config.client.offload = true;
      config.client.presend_model = true;
      config.client.presend_rear_only = true;
      config.client.offload_event = "front_complete";
      std::size_t cut = first_pool_cut(*bundle.network);
      config.client.partition_cut = cut;
      config.click_at = after_ack_click_time(*bundle.network, true, cut,
                                             options.bandwidth_bps);
      break;
    }
    case Scenario::kServerOnly:
      FAIL() << "kServerOnly never offloads; not a traced scenario";
  }
  config.obs = &out.obs;
  OffloadingRuntime runtime(config, std::move(bundle));
  out.result = runtime.run();
}

double sum_kind(const obs::Tracer& tracer, obs::TraceId trace,
                obs::SpanKind kind) {
  double total = 0.0;
  for (const obs::Span& s : tracer.spans()) {
    if (s.trace == trace && s.kind == kind) total += s.dur_s;
  }
  return total;
}

const obs::Span* find_span(const obs::Tracer& tracer, obs::SpanId id) {
  for (const obs::Span& s : tracer.spans()) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

/// A span that occupies its serial resource exclusively: the resource is
/// doing this one unit of work. Waits (queue, batch, backoff, transmits,
/// crash recovery) may legitimately overlap other activity.
bool is_exclusive_work(const obs::Span& s) {
  switch (s.kind) {
    case obs::SpanKind::kClientExec:
    case obs::SpanKind::kClientCapture:
    case obs::SpanKind::kClientRestore:
    case obs::SpanKind::kServerRestore:
    case obs::SpanKind::kServerExec:
    case obs::SpanKind::kServerCapture:
    case obs::SpanKind::kLaneBusy:
      return s.dur_s > 0.0;  // zero-charged spans were abandoned, not run
    default:
      return false;
  }
}

/// Structural invariants that hold for every trace, faulted or not.
void check_tree_basics(const obs::Tracer& tracer, const std::string& label) {
  SCOPED_TRACE(label);
  for (const obs::Span& s : tracer.spans()) {
    EXPECT_TRUE(s.closed) << "span " << s.id << " (" << s.name
                          << ") never closed";
    EXPECT_LE(s.start.ns(), s.end.ns()) << "span " << s.id << " runs backward";
    EXPECT_GE(s.dur_s, 0.0) << "span " << s.id << " charged negative time";
    if (s.parent != 0) {
      const obs::Span* parent = find_span(tracer, s.parent);
      ASSERT_NE(parent, nullptr)
          << "span " << s.id << " (" << s.name << ") has orphan parent "
          << s.parent;
      EXPECT_EQ(parent->trace, s.trace)
          << "span " << s.id << " crosses traces to its parent";
    }
  }
}

/// Stricter geometry for fault-free runs: children fit inside their
/// parents and one serial resource never runs two units of work at once.
/// (Faulted runs relax containment: a late result's transmit-down span
/// closes after the root when the client already fell back locally.)
void check_tree_geometry(const obs::Tracer& tracer, const std::string& label) {
  SCOPED_TRACE(label);
  const std::vector<obs::Span>& spans = tracer.spans();
  for (const obs::Span& s : spans) {
    if (s.parent == 0 || !obs::is_phase_kind(s.kind)) continue;
    const obs::Span* parent = find_span(tracer, s.parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_GE(s.start.ns(), parent->start.ns())
        << "span " << s.id << " (" << s.name << ") starts before parent "
        << parent->name;
    EXPECT_LE(s.end.ns(), parent->end.ns())
        << "span " << s.id << " (" << s.name << ") ends after parent "
        << parent->name;
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (!is_exclusive_work(spans[i])) continue;
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      if (!is_exclusive_work(spans[j])) continue;
      if (spans[i].resource != spans[j].resource) continue;
      // Nesting is fine (lane-busy envelopes its restore/exec/capture);
      // partial overlap is not.
      const bool i_holds_j = spans[i].start.ns() <= spans[j].start.ns() &&
                             spans[j].end.ns() <= spans[i].end.ns();
      const bool j_holds_i = spans[j].start.ns() <= spans[i].start.ns() &&
                             spans[i].end.ns() <= spans[j].end.ns();
      const bool disjoint = spans[i].end.ns() <= spans[j].start.ns() ||
                            spans[j].end.ns() <= spans[i].start.ns();
      EXPECT_TRUE(i_holds_j || j_holds_i || disjoint)
          << spans[i].name << " [" << spans[i].start.ns() << ","
          << spans[i].end.ns() << "] and " << spans[j].name << " ["
          << spans[j].start.ns() << "," << spans[j].end.ns()
          << "] partially overlap on " << spans[i].resource;
    }
  }
}

/// The reconciliation core: recompute every breakdown category from raw
/// per-kind leaf sums and compare exactly. Valid for fault-free runs,
/// where each server-side kind occurs exactly once (no superseded
/// attempts), so "sum over kind" and the derivation's "last of kind"
/// coincide.
void check_accounting(const TracedRun& run) {
  SCOPED_TRACE(run.label);
  const obs::Tracer& tracer = run.obs.trace;
  const obs::TraceId trace = run.result.trace_id;
  ASSERT_NE(trace, 0u);
  const InferenceBreakdown& b = run.result.breakdown;

  // The runtime's breakdown and a fresh derivation from the same spans
  // agree bitwise — the trace is a complete record.
  const InferenceBreakdown rederived = breakdown_from_trace(tracer, trace);
  EXPECT_EQ(rederived.total(), b.total());

  EXPECT_EQ(sum_kind(tracer, trace, obs::SpanKind::kClientExec),
            b.dnn_execution_client);
  EXPECT_EQ(sum_kind(tracer, trace, obs::SpanKind::kClientCapture),
            b.snapshot_capture_client);
  EXPECT_EQ(sum_kind(tracer, trace, obs::SpanKind::kRetryBackoff),
            b.retry_backoff);
  EXPECT_EQ(sum_kind(tracer, trace, obs::SpanKind::kCrashRecovery),
            b.crash_recovery);
  if (run.result.offloaded) {
    EXPECT_EQ(sum_kind(tracer, trace, obs::SpanKind::kServerRestore),
              b.snapshot_restore_server);
    EXPECT_EQ(sum_kind(tracer, trace, obs::SpanKind::kServerExec),
              b.dnn_execution_server);
    EXPECT_EQ(sum_kind(tracer, trace, obs::SpanKind::kServerCapture),
              b.snapshot_capture_server);
    EXPECT_EQ(sum_kind(tracer, trace, obs::SpanKind::kQueueWait),
              b.server_queue_wait);
    EXPECT_EQ(sum_kind(tracer, trace, obs::SpanKind::kBatchWait),
              b.server_batch_wait);
    EXPECT_EQ(sum_kind(tracer, trace, obs::SpanKind::kClientRestore),
              b.snapshot_restore_client);
  } else {
    EXPECT_EQ(b.transmission_up, 0.0);
    EXPECT_EQ(b.transmission_down, 0.0);
    EXPECT_EQ(b.dnn_execution_server, 0.0);
  }

  // The categories tile the end-to-end interval: the root span's length
  // equals the total, with `other` absorbing the (±1e-9-snapped) residual.
  const obs::Span* root = nullptr;
  int roots = 0;
  for (const obs::Span& s : tracer.spans()) {
    if (s.trace == trace && s.kind == obs::SpanKind::kInference &&
        s.parent == 0) {
      root = &s;
      ++roots;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(roots, 1) << "trace has more than one root";
  EXPECT_NEAR(b.total(), (root->end - root->start).to_seconds(), 1e-9);
  // Not EXPECT_EQ: `other` snaps residuals inside ±1e-9 to zero, so the
  // total may sit up to 1e-9 below the measured end-to-end latency.
  EXPECT_NEAR(b.total(), run.result.inference_seconds, 1e-9);
}

TEST(ObsAccounting, LeafSumsReconcileAcrossConfigGrid) {
  const Scenario scenarios[] = {
      Scenario::kClientOnly,
      Scenario::kOffloadBeforeAck,
      Scenario::kOffloadAfterAck,
      Scenario::kOffloadPartial,
  };
  const double bandwidths[] = {10e6, 30e6, 120e6};
  const std::uint64_t image_seeds[] = {3, 11};
  for (Scenario scenario : scenarios) {
    for (double bw : bandwidths) {
      for (std::uint64_t seed : image_seeds) {
        TracedRun run;
        ScenarioOptions options;
        options.bandwidth_bps = bw;
        options.image_seed = seed;
        run.label = std::string(scenario_name(scenario)) + " bw=" +
                    std::to_string(static_cast<long long>(bw)) + " seed=" +
                    std::to_string(seed);
        run_traced(scenario, options, run);
        check_accounting(run);
        check_tree_basics(run.obs.trace, run.label);
        check_tree_geometry(run.obs.trace, run.label);
      }
    }
  }
}

TEST(ObsAccounting, ReconcilesUnderEveryKernelBackend) {
  // The kernel backend changes which code computes the tensors, not how
  // time is accounted: the reconciliation must hold verbatim under all
  // three, and every NN exec leaf span must say which backend ran it
  // (scalar — the golden default — tags nothing).
  for (nn::KernelBackend k :
       {nn::KernelBackend::kScalar, nn::KernelBackend::kSimd,
        nn::KernelBackend::kInt8}) {
    nn::ScopedKernelBackend scoped(k);
    TracedRun run;
    ScenarioOptions options;
    options.bandwidth_bps = 30e6;
    run.label = std::string("backend=") + nn::kernel_backend_name(k);
    run_traced(Scenario::kOffloadPartial, options, run);
    check_accounting(run);
    check_tree_basics(run.obs.trace, run.label);
    check_tree_geometry(run.obs.trace, run.label);
    for (const obs::Span& s : run.obs.trace.spans()) {
      if (s.kind != obs::SpanKind::kClientExec &&
          s.kind != obs::SpanKind::kServerExec) {
        continue;
      }
      std::string tagged;
      for (const auto& [key, value] : s.attrs) {
        if (key == "kernels.backend") tagged = value;
      }
      if (k == nn::KernelBackend::kScalar) {
        EXPECT_TRUE(tagged.empty())
            << run.label << ": scalar must not tag " << s.name;
      } else {
        EXPECT_EQ(tagged, nn::kernel_backend_name(k))
            << run.label << ": exec span " << s.name << " untagged";
      }
    }
  }
}

TEST(ObsAccounting, FleetServerResourcesReconcile) {
  // A balanced 2-server run with dedup pre-send: the breakdown must still
  // reconcile exactly against raw leaf sums, with every server-side span
  // carried by a namespaced fleet/server<k> resource.
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.fleet.size = 2;
  config.fleet.balancer.policy = "p2c";
  config.fleet.dedup = true;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  TracedRun run;
  run.label = "fleet p2c dedup";
  config.obs = &run.obs;
  OffloadingRuntime runtime(config, std::move(bundle));
  run.result = runtime.run();

  ASSERT_TRUE(run.result.offloaded);
  check_accounting(run);
  check_tree_basics(run.obs.trace, run.label);
  check_tree_geometry(run.obs.trace, run.label);

  // Server-side work runs on exactly one fleet server, and its spans say
  // which: every exclusive server span's resource is fleet-namespaced.
  std::set<std::string> server_resources;
  for (const obs::Span& s : run.obs.trace.spans()) {
    switch (s.kind) {
      case obs::SpanKind::kServerRestore:
      case obs::SpanKind::kServerExec:
      case obs::SpanKind::kServerCapture:
      case obs::SpanKind::kLaneBusy:
        EXPECT_EQ(s.resource.rfind("fleet/server", 0), 0u)
            << s.name << " ran on non-fleet resource " << s.resource;
        server_resources.insert(s.resource.substr(0, 13));
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(server_resources.size(), 1u)
      << "one inference must execute on exactly one server";
}

TEST(ObsAccounting, FaultedSupervisedTreeIsWellFormed) {
  // Faults add superseded transmits, backoff spans, crash recovery and
  // possibly a failover — the tree must stay closed and orphan-free, and
  // client-side sums still reconcile exactly (they accumulate in emission
  // order just like the timeline's += sites).
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.client.supervisor.enabled = true;
  config.fleet.spares = 1;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  fault::FaultPlanConfig faults = fault::FaultPlanConfig::uniform(0.08, 23);
  fault::CrashSpec crash;
  crash.first_at = config.click_at + sim::SimTime::millis(2);
  crash.downtime = sim::SimTime::seconds(3);
  faults.crashes.push_back(crash);
  config.faults = faults;
  obs::Obs obs;
  config.obs = &obs;
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();

  check_tree_basics(obs.trace, "faulted");
  const obs::TraceId trace = result.trace_id;
  EXPECT_EQ(sum_kind(obs.trace, trace, obs::SpanKind::kClientExec),
            result.breakdown.dnn_execution_client);
  EXPECT_EQ(sum_kind(obs.trace, trace, obs::SpanKind::kClientCapture),
            result.breakdown.snapshot_capture_client);
  EXPECT_EQ(sum_kind(obs.trace, trace, obs::SpanKind::kRetryBackoff),
            result.breakdown.retry_backoff);
  EXPECT_EQ(sum_kind(obs.trace, trace, obs::SpanKind::kCrashRecovery),
            result.breakdown.crash_recovery);
  // The faulted scenario actually exercised the retry machinery.
  EXPECT_GT(result.breakdown.retry_backoff, 0.0);
}

}  // namespace
}  // namespace offload::core
