// Tests for the privacy substrate: similarity metrics and the
// feature-inversion attack, including the paper's defense (withholding the
// front weights makes inversion fail).
#include <gtest/gtest.h>

#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/models.h"
#include "src/nn/pool.h"
#include "src/privacy/inversion.h"
#include "src/privacy/metrics.h"

namespace offload::privacy {
namespace {

using nn::Shape;
using nn::Tensor;

TEST(Metrics, MseBasics) {
  Tensor a(Shape{4}, {1, 2, 3, 4});
  Tensor b(Shape{4}, {1, 2, 3, 4});
  EXPECT_EQ(mse(a, b), 0.0);
  Tensor c(Shape{4}, {2, 3, 4, 5});
  EXPECT_EQ(mse(a, c), 1.0);
  Tensor wrong(Shape{3});
  EXPECT_THROW(mse(a, wrong), std::invalid_argument);
}

TEST(Metrics, PsnrBehaviour) {
  Tensor a(Shape{4}, {0.1f, 0.5f, 0.9f, 0.3f});
  EXPECT_EQ(psnr_db(a, a), 99.0);  // identical caps out
  Tensor noisy(Shape{4}, {0.2f, 0.4f, 1.0f, 0.2f});
  double p = psnr_db(a, noisy);
  EXPECT_GT(p, 5.0);
  EXPECT_LT(p, 40.0);
}

TEST(Metrics, CorrelationBasics) {
  Tensor a(Shape{5}, {1, 2, 3, 4, 5});
  Tensor up(Shape{5}, {2, 4, 6, 8, 10});
  Tensor down(Shape{5}, {5, 4, 3, 2, 1});
  Tensor flat = Tensor::full(Shape{5}, 3.0f);
  EXPECT_NEAR(correlation(a, up), 1.0, 1e-9);
  EXPECT_NEAR(correlation(a, down), -1.0, 1e-9);
  EXPECT_EQ(correlation(a, flat), 0.0);
}

/// A small front network the attack can chew through quickly: 3x16x16
/// input, one 8-filter 3x3 conv (cut there) and a pool for the deeper-cut
/// test. Mirrors the paper's shallow offloading points.
std::unique_ptr<nn::Network> make_probe_front(std::uint64_t seed) {
  auto net = std::make_unique<nn::Network>("probe");
  net->add(std::make_unique<nn::InputLayer>("data", Shape{3, 16, 16}));
  net->add(std::make_unique<nn::ConvLayer>(
      "conv1", nn::ConvConfig{.in_channels = 3, .out_channels = 8,
                              .kernel = 3, .stride = 1, .pad = 1}));
  net->add(std::make_unique<nn::PoolLayer>(
      "pool1", nn::PoolConfig{.kernel = 2, .stride = 2, .pad = 0}, false));
  net->init_params(seed);
  return net;
}

class InversionTest : public ::testing::Test {
 protected:
  InversionTest() : net_(make_probe_front(31)) {
    // A structured "secret image": smooth gradient plus a bright square,
    // so correlation against reconstructions is meaningful.
    original_ = Tensor(Shape{3, 16, 16});
    for (std::int64_t c = 0; c < 3; ++c) {
      for (std::int64_t h = 0; h < 16; ++h) {
        for (std::int64_t w = 0; w < 16; ++w) {
          float v = static_cast<float>(h + w) / 32.0f;
          if (h >= 4 && h < 10 && w >= 4 && w < 10) v = 0.95f;
          original_.at(c, h, w) = v;
        }
      }
    }
    cut_ = net_->index_of("conv1");
    feature_ = net_->forward_front(original_, cut_);
  }

  std::unique_ptr<nn::Network> net_;
  Tensor original_;
  std::size_t cut_ = 0;
  Tensor feature_;
};

TEST_F(InversionTest, HillClimbingReducesFeatureLoss) {
  InversionConfig cfg;
  cfg.sweeps = 6;
  InversionResult r = invert_features(*net_, cut_, feature_, cfg);
  EXPECT_LT(r.final_feature_loss, r.initial_feature_loss * 0.2);
  EXPECT_GT(r.accepted_steps, 100);
  EXPECT_EQ(r.reconstruction.shape(), original_.shape());
}

TEST_F(InversionTest, WithWeightsBeatsWithoutWeights) {
  // The paper's claim: withholding the front weights defeats inversion.
  InversionConfig cfg;
  InversionResult with_weights = invert_features(*net_, cut_, feature_, cfg);

  // Surrogate front: same architecture, unknown (different) weights — what
  // the server can construct from the description alone.
  auto surrogate = make_probe_front(999);
  InversionResult without = invert_features(*surrogate, cut_, feature_, cfg);

  double corr_with = correlation(with_weights.reconstruction, original_);
  double corr_without = correlation(without.reconstruction, original_);
  EXPECT_GT(corr_with, 0.6);
  EXPECT_GT(corr_with, corr_without + 0.3);
  EXPECT_GT(psnr_db(with_weights.reconstruction, original_),
            psnr_db(without.reconstruction, original_) + 3.0);
}

TEST_F(InversionTest, DeterministicForFixedSeed) {
  InversionConfig cfg;
  cfg.sweeps = 3;
  InversionResult a = invert_features(*net_, cut_, feature_, cfg);
  InversionResult b = invert_features(*net_, cut_, feature_, cfg);
  EXPECT_EQ(Tensor::max_abs_diff(a.reconstruction, b.reconstruction), 0.0f);
}

TEST_F(InversionTest, DeeperCutIsHarderToInvert) {
  InversionConfig cfg;
  cfg.sweeps = 6;
  InversionResult shallow = invert_features(*net_, cut_, feature_, cfg);
  std::size_t deep_cut = net_->index_of("pool1");
  Tensor deep_feature = net_->forward_front(original_, deep_cut);
  InversionResult deep = invert_features(*net_, deep_cut, deep_feature, cfg);
  // Max-pooling discards 3/4 of the constraints; reconstruction quality
  // should not improve.
  EXPECT_GE(correlation(shallow.reconstruction, original_),
            correlation(deep.reconstruction, original_) - 0.05);
}

}  // namespace
}  // namespace offload::privacy
