// Focused unit tests for EdgeServer: message handling, ACK timing, session
// lifecycle, and execution accounting — exercised through a raw channel
// (no ClientDevice), so server behaviour is pinned independently.
#include <gtest/gtest.h>

#include "src/core/app.h"
#include "src/edge/edge_server.h"
#include "src/jsvm/snapshot.h"
#include "src/nn/models.h"

namespace offload::edge {
namespace {

struct Harness {
  sim::Simulation sim;
  std::unique_ptr<net::Channel> channel;
  std::unique_ptr<EdgeServer> server;
  std::vector<net::Message> client_inbox;

  explicit Harness(EdgeServerConfig config = {}) {
    net::ChannelConfig ch;
    ch.a_to_b.latency = sim::SimTime::millis(1);
    ch.b_to_a.latency = sim::SimTime::millis(1);
    channel = net::Channel::make(sim, ch);
    server = std::make_unique<EdgeServer>(sim, channel->b(), config);
    channel->a().set_handler(
        [this](const net::Message& m) { client_inbox.push_back(m); });
  }

  void send_model(const nn::Network& net) {
    ModelFilesPayload payload;
    payload.files = nn::model_files(net);
    net::Message msg;
    msg.type = net::MessageType::kModelFiles;
    msg.name = net.name();
    msg.payload = payload.encode();
    channel->a().send(std::move(msg));
  }

  /// Send a snapshot of a realm that re-runs `source` via a pending event.
  void send_snapshot(const std::string& app, const std::string& source) {
    jsvm::Interpreter scratch;
    scratch.eval_program(source);
    jsvm::SnapshotResult snap = jsvm::capture_snapshot(scratch);
    SnapshotPayload payload;
    payload.program = std::move(snap.program);
    net::Message msg;
    msg.type = net::MessageType::kSnapshot;
    msg.name = app;
    msg.payload = payload.encode();
    channel->a().send(std::move(msg));
  }
};

TEST(EdgeServerTest, AckArrivesAfterStoreTime) {
  EdgeServerConfig config;
  config.store_Bps = 1e6;  // slow disk: visible store delay
  Harness h(config);
  auto net = nn::build_tiny_cnn(17);
  h.send_model(*net);
  h.sim.run();
  ASSERT_EQ(h.client_inbox.size(), 1u);
  EXPECT_EQ(h.client_inbox[0].type, net::MessageType::kAck);
  // Store time for ~0.5 MB at 1 MB/s ≈ 0.5 s, plus transfer time.
  double ack_at = h.sim.now().to_seconds();
  double model_bytes = static_cast<double>(net->param_bytes());
  EXPECT_GT(ack_at, model_bytes / 1e6 * 0.9);
}

TEST(EdgeServerTest, StoresAllModelFiles) {
  Harness h;
  auto net = nn::build_tiny_cnn(17);
  h.send_model(*net);
  h.sim.run();
  EXPECT_TRUE(h.server->model_store().can_instantiate("tinycnn"));
  EXPECT_EQ(h.server->model_store().file_count(), 2u);
  EXPECT_EQ(h.server->stats().models_stored, 1);
}

TEST(EdgeServerTest, RefusesEverythingUntilInstalled) {
  EdgeServerConfig config;
  config.offloading_system_installed = false;
  Harness h(config);
  auto net = nn::build_tiny_cnn(17);
  h.send_model(*net);
  h.send_snapshot("tinycnn", "var x = 1;");
  h.sim.run();
  ASSERT_EQ(h.client_inbox.size(), 2u);
  for (const auto& m : h.client_inbox) {
    EXPECT_EQ(m.type, net::MessageType::kControl);
    EXPECT_EQ(m.name.rfind("not_installed", 0), 0u);
  }
  EXPECT_EQ(h.server->stats().refused, 2);
  EXPECT_FALSE(h.server->model_store().can_instantiate("tinycnn"));
}

TEST(EdgeServerTest, ExecutesSnapshotAndReturnsResult) {
  Harness h;
  h.send_snapshot(
      "plain",
      "var done = false; var b = document.createElement('b'); "
      "document.body.appendChild(b); "
      "b.addEventListener('go', function() { done = true; }); "
      "b.dispatchEvent('go');");
  h.sim.run();
  ASSERT_EQ(h.client_inbox.size(), 1u);
  EXPECT_EQ(h.client_inbox[0].type, net::MessageType::kResultSnapshot);
  // The returned snapshot reflects the executed handler.
  SnapshotPayload result =
      SnapshotPayload::decode(std::span(h.client_inbox[0].payload));
  jsvm::Interpreter check;
  jsvm::restore_snapshot(check, result.program);
  EXPECT_EQ(check.eval_program("done;"), jsvm::Value(true));
  ASSERT_EQ(h.server->executions().size(), 1u);
  EXPECT_GT(h.server->executions()[0].restore_s, 0);
}

TEST(EdgeServerTest, SessionKeptPerAppNotLeakedPerOffload) {
  Harness h;
  for (int i = 0; i < 3; ++i) {
    h.send_snapshot("appA", "var x = " + std::to_string(i) + ";");
    h.sim.run();
  }
  h.send_snapshot("appB", "var y = 9;");
  h.sim.run();
  EXPECT_EQ(h.server->stats().snapshots_executed, 4);
  // One live session realm per app; repeated offloads of the same app
  // replace, not accumulate. (Indirect check: last_browser is the appB
  // realm and is live.)
  ASSERT_NE(h.server->last_browser(), nullptr);
  EXPECT_EQ(jsvm::to_number(
                h.server->last_browser()->interp().eval_program("y;")),
            9);
}

TEST(EdgeServerTest, DifferentialAgainstUnknownBaselineRefused) {
  Harness h;
  SnapshotPayload payload;
  payload.differential = true;
  payload.base_version = 0xdeadbeef;
  payload.program = "(function() { x = 1; })();";
  net::Message msg;
  msg.type = net::MessageType::kSnapshot;
  msg.name = "ghost";
  msg.payload = payload.encode();
  h.channel->a().send(std::move(msg));
  h.sim.run();
  ASSERT_EQ(h.client_inbox.size(), 1u);
  EXPECT_EQ(h.client_inbox[0].type, net::MessageType::kControl);
  EXPECT_EQ(h.client_inbox[0].name.rfind("need_full", 0), 0u);
  EXPECT_EQ(h.server->stats().diff_version_misses, 1);
  EXPECT_EQ(h.server->stats().snapshots_executed, 0);
}

TEST(EdgeServerTest, SessionsDisabledMeansNoVersionInReply) {
  EdgeServerConfig config;
  config.keep_sessions = false;
  Harness h(config);
  h.send_snapshot("appA", "var x = 1;");
  h.sim.run();
  ASSERT_EQ(h.client_inbox.size(), 1u);
  SnapshotPayload result =
      SnapshotPayload::decode(std::span(h.client_inbox[0].payload));
  EXPECT_EQ(result.base_version, 0u);
}

TEST(EdgeServerTest, OverlayInstallsAndExtractsModels) {
  EdgeServerConfig config;
  config.offloading_system_installed = false;
  Harness h(config);

  auto net = nn::build_tiny_cnn(17);
  vmsynth::VmImage base = vmsynth::make_base_image();
  std::vector<std::pair<std::string, util::Bytes>> model_files;
  for (auto& f : nn::model_files(*net)) {
    model_files.emplace_back(f.name, std::move(f.content));
  }
  vmsynth::SystemBundleSizes sizes;
  sizes.browser_bytes = 200'000;
  sizes.libraries_bytes = 200'000;
  sizes.server_program_bytes = 10'000;
  vmsynth::VmOverlay overlay = vmsynth::create_overlay(
      base, vmsynth::make_customized_image(base, sizes, model_files));

  net::Message msg;
  msg.type = net::MessageType::kVmOverlay;
  msg.name = "tinycnn";
  msg.payload = std::move(overlay.payload);
  h.channel->a().send(std::move(msg));
  h.sim.run();

  EXPECT_TRUE(h.server->installed());
  EXPECT_EQ(h.server->stats().overlays_installed, 1);
  EXPECT_TRUE(h.server->model_store().can_instantiate("tinycnn"));
  ASSERT_EQ(h.client_inbox.size(), 1u);
  EXPECT_EQ(h.client_inbox[0].type, net::MessageType::kAck);
  EXPECT_EQ(h.client_inbox[0].name.rfind("installed:", 0), 0u);
  EXPECT_GT(h.server->stats().vm_synthesis_compute_s, 0);
}

TEST(EdgeServerTest, ConcurrentSnapshotsQueueOnCompute) {
  // Two clients offload at the same instant: the second execution waits
  // for the first (shared server compute), and both complete correctly.
  sim::Simulation sim;
  net::ChannelConfig ch;
  auto c1 = net::Channel::make(sim, ch, "c1", "edge", 1);
  auto c2 = net::Channel::make(sim, ch, "c2", "edge", 2);
  EdgeServerConfig config;
  config.keep_sessions = false;
  EdgeServer server(sim, c1->b(), config);
  server.attach(c2->b());

  nn::BenchmarkModel tiny{"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
  ClientConfig client_config;
  ClientDevice client1(sim, c1->a(), client_config,
                       core::make_benchmark_app(tiny, false));
  ClientDevice client2(sim, c2->a(), client_config,
                       core::make_benchmark_app(tiny, false));
  client1.start();
  client2.start();
  sim::SimTime click = sim::SimTime::seconds(5);
  client1.click_at(click);
  client2.click_at(click);
  sim.run();

  ASSERT_TRUE(client1.finished());
  ASSERT_TRUE(client2.finished());
  EXPECT_EQ(client1.result_text(), client2.result_text());
  ASSERT_EQ(server.executions().size(), 2u);
  EXPECT_EQ(server.executions()[0].queue_wait_s, 0.0);
  EXPECT_GT(server.executions()[1].queue_wait_s, 0.0);
  // The waiting client's inference is slower by about the first's busy
  // time.
  EXPECT_GT(std::max(client1.timeline().inference_seconds(),
                     client2.timeline().inference_seconds()),
            std::min(client1.timeline().inference_seconds(),
                     client2.timeline().inference_seconds()));
}

}  // namespace
}  // namespace offload::edge
