// Tests for the discrete-event simulator and the network substrate (link
// shaping, channels, reliability, bandwidth estimation). The link math is
// checked against the paper's own arithmetic: a 44 MB model at 30 Mbps
// takes ~11.7 s.
#include <gtest/gtest.h>

#include "src/net/bandwidth.h"
#include "src/net/channel.h"
#include "src/net/link.h"
#include "src/net/message.h"
#include "src/sim/simulation.h"

namespace offload {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(SimTime, ArithmeticAndConversion) {
  EXPECT_EQ(SimTime::seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::millis(3).to_seconds(), 0.003);
  EXPECT_EQ((SimTime::seconds(1) + SimTime::millis(500)).to_seconds(), 1.5);
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_EQ(SimTime::zero().ns(), 0);
}

TEST(Simulation, FiresInTimestampOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(SimTime::millis(30), [&] { order.push_back(3); });
  sim.schedule(SimTime::millis(10), [&] { order.push_back(1); });
  sim.schedule(SimTime::millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(30));
}

TEST(Simulation, FifoTieBreakAtEqualTimes) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(SimTime::millis(7), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int fired = 0;
  sim.schedule(SimTime::millis(1), [&] {
    ++fired;
    sim.schedule(SimTime::millis(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::millis(2));
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  int fired = 0;
  auto h = sim.schedule(SimTime::millis(5), [&] { ++fired; });
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // double-cancel
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule(SimTime::millis(5), [&] { ++fired; });
  sim.schedule(SimTime::millis(15), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(SimTime::millis(10)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::millis(10));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.schedule(SimTime::millis(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::millis(1), [] {}),
               std::logic_error);
}

TEST(Link, PaperTransferArithmetic) {
  // "44 MB model ... about 12 seconds ... 30 Mbps" (Section III.B.1).
  net::Link link(net::LinkConfig{.bandwidth_bps = 30e6,
                                 .latency = SimTime::zero()});
  SimTime t = link.nominal_duration(44'000'000);
  EXPECT_NEAR(t.to_seconds(), 11.73, 0.01);
}

TEST(Link, SerializesTransfersFifo) {
  net::Link link(net::LinkConfig{.bandwidth_bps = 8e6,  // 1 MB/s
                                 .latency = SimTime::millis(10)});
  auto p1 = link.transmit(SimTime::zero(), 1'000'000);  // 1 s on the wire
  EXPECT_NEAR(p1.sent.to_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(p1.arrival.to_seconds(), 1.01, 1e-9);
  // Second message queued behind the first.
  auto p2 = link.transmit(SimTime::millis(100), 500'000);
  EXPECT_NEAR(p2.start.to_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(p2.arrival.to_seconds(), 1.51, 1e-9);
  // After idle, no queueing.
  auto p3 = link.transmit(SimTime::seconds(10), 1000);
  EXPECT_NEAR(p3.start.to_seconds(), 10.0, 1e-9);
}

TEST(Link, BandwidthChangeAffectsFutureTransfers) {
  net::Link link(net::LinkConfig{.bandwidth_bps = 8e6,
                                 .latency = SimTime::zero()});
  auto p1 = link.transmit(SimTime::zero(), 1'000'000);
  link.set_bandwidth_bps(16e6);
  auto p2 = link.transmit(p1.sent, 1'000'000);
  EXPECT_NEAR((p2.sent - p2.start).to_seconds(), 0.5, 1e-9);
}

TEST(Link, RejectsBadConfig) {
  EXPECT_THROW(net::Link(net::LinkConfig{.bandwidth_bps = 0}),
               std::invalid_argument);
  EXPECT_THROW(net::Link(net::LinkConfig{.loss_rate = 1.5}),
               std::invalid_argument);
}

TEST(Message, EncodeDecodeWithChecksum) {
  net::Message m;
  m.type = net::MessageType::kSnapshot;
  m.name = "googlenet";
  m.payload = {1, 2, 3, 4, 5};
  m.id = 77;
  auto wire = m.encode();
  net::Message d = net::Message::decode(std::span(wire));
  EXPECT_EQ(d.type, m.type);
  EXPECT_EQ(d.name, m.name);
  EXPECT_EQ(d.payload, m.payload);
  EXPECT_EQ(d.id, 77u);
  // Corrupt a payload byte: checksum must catch it.
  wire[wire.size() - 6] ^= 0xff;
  EXPECT_THROW(net::Message::decode(std::span(wire)), util::DecodeError);
}

TEST(Channel, DeliversAtSimulatedArrivalTime) {
  Simulation sim;
  net::ChannelConfig cfg;
  cfg.a_to_b.bandwidth_bps = 8e6;  // 1 MB/s
  cfg.a_to_b.latency = SimTime::millis(5);
  auto channel = net::Channel::make(sim, cfg);
  SimTime arrival;
  channel->b().set_handler([&](const net::Message& m) {
    arrival = sim.now();
    EXPECT_EQ(m.name, "hello");
  });
  net::Message m;
  m.type = net::MessageType::kControl;
  m.name = "hello";
  m.payload.assign(1'000'000, 0);  // 1 MB → 1 s + 5 ms
  channel->a().send(std::move(m));
  sim.run();
  EXPECT_NEAR(arrival.to_seconds(), 1.005, 0.001);
  EXPECT_GT(channel->b().bytes_received(), 1'000'000u);
}

TEST(Channel, BidirectionalConversation) {
  Simulation sim;
  auto channel = net::Channel::make(sim, net::ChannelConfig{});
  int server_got = 0;
  int client_got = 0;
  channel->b().set_handler([&](const net::Message&) {
    ++server_got;
    net::Message reply;
    reply.type = net::MessageType::kAck;
    channel->b().send(std::move(reply));
  });
  channel->a().set_handler([&](const net::Message&) { ++client_got; });
  net::Message m;
  m.type = net::MessageType::kModelFiles;
  channel->a().send(std::move(m));
  sim.run();
  EXPECT_EQ(server_got, 1);
  EXPECT_EQ(client_got, 1);
}

TEST(Channel, LossyLinkRetransmitsUntilDelivery) {
  Simulation sim;
  net::ChannelConfig cfg;
  cfg.a_to_b.loss_rate = 0.5;
  cfg.reliable = true;
  auto channel = net::Channel::make(sim, cfg, "client", "server", /*seed=*/3);
  int delivered = 0;
  channel->b().set_handler([&](const net::Message&) { ++delivered; });
  for (int i = 0; i < 20; ++i) {
    net::Message m;
    m.type = net::MessageType::kControl;
    channel->a().send(std::move(m));
  }
  sim.run();
  EXPECT_EQ(delivered, 20);       // every message eventually arrives
  EXPECT_GT(channel->drops(), 0u);  // and losses actually happened
}

TEST(Channel, UnreliableDropsSilently) {
  Simulation sim;
  net::ChannelConfig cfg;
  cfg.a_to_b.loss_rate = 0.9;
  cfg.reliable = false;
  auto channel = net::Channel::make(sim, cfg, "a", "b", 5);
  int delivered = 0;
  channel->b().set_handler([&](const net::Message&) { ++delivered; });
  for (int i = 0; i < 50; ++i) {
    net::Message m;
    m.type = net::MessageType::kControl;
    channel->a().send(std::move(m));
  }
  sim.run();
  EXPECT_LT(delivered, 50);
}

TEST(Bandwidth, EstimatorTracksObservations) {
  net::BandwidthEstimator est(30e6);
  EXPECT_EQ(est.estimate_bps(), 30e6);  // fallback before data
  // Observe 1 MB in 1 s = 8 Mbps, repeatedly.
  for (int i = 0; i < 20; ++i) {
    est.observe(1'000'000, SimTime::seconds(1));
  }
  EXPECT_NEAR(est.estimate_bps(), 8e6, 1e5);
  EXPECT_NEAR(est.predict(2'000'000).to_seconds(), 2.0, 0.05);
  EXPECT_EQ(est.observations(), 20u);
}

TEST(Channel, ArqExhaustionInvokesSenderFailureHandler) {
  // With certain loss, the ARQ burns its whole retransmit budget and then
  // surfaces a typed delivery failure on the *sender* — no silent hang.
  Simulation sim;
  net::ChannelConfig config;
  config.reliable = true;
  config.max_retransmits = 5;
  config.retransmit_timeout = SimTime::millis(20);
  auto channel = net::Channel::make(sim, config);
  channel->set_fault_hook(true, [](const net::Message&) {
    net::FaultDecision d;
    d.drop = true;  // every attempt, deterministically
    return d;
  });
  int failures = 0;
  int attempts_seen = 0;
  channel->a().set_failure_handler([&](const net::Message&, int attempts) {
    ++failures;
    attempts_seen = attempts;
  });
  net::Message m;
  m.type = net::MessageType::kControl;
  m.name = "lost";
  channel->a().send(std::move(m));
  sim.run();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(attempts_seen, 6);  // original + 5 retransmits
  EXPECT_EQ(channel->delivery_failures(), 1u);
}

TEST(Channel, UnreliableLossAlsoReportsDeliveryFailure) {
  Simulation sim;
  net::ChannelConfig config;
  config.reliable = false;
  auto channel = net::Channel::make(sim, config);
  channel->set_fault_hook(true, [](const net::Message&) {
    net::FaultDecision d;
    d.drop = true;
    return d;
  });
  int failures = 0;
  channel->a().set_failure_handler(
      [&](const net::Message&, int) { ++failures; });
  net::Message m;
  m.type = net::MessageType::kControl;
  m.name = "lost";
  channel->a().send(std::move(m));
  sim.run();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(channel->delivery_failures(), 1u);
}

TEST(Bandwidth, IgnoresDegenerateSamples) {
  net::BandwidthEstimator est(30e6);
  est.observe(0, SimTime::seconds(1));
  est.observe(100, SimTime::zero());
  EXPECT_EQ(est.observations(), 0u);
  EXPECT_EQ(est.estimate_bps(), 30e6);
}

}  // namespace
}  // namespace offload
