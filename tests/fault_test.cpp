// Tests for the deterministic fault-injection framework (src/fault) and
// the client offload supervisor: message faults, server crashes/stalls,
// backoff, circuit breaking, hedging, crash recovery, and the end-to-end
// determinism guarantee for faulted runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/core/offload.h"
#include "src/serve/scheduler.h"
#include "src/util/crc32.h"

namespace offload::core {
namespace {

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

net::Message make_message(std::string name, std::size_t payload_bytes) {
  net::Message m;
  m.type = net::MessageType::kSnapshot;
  m.name = std::move(name);
  m.payload.assign(payload_bytes, 0x5a);
  return m;
}

// ---------------------------------------------------------------------------
// FaultPlan

TEST(FaultPlan, SameSeedSameDecisions) {
  fault::FaultPlanConfig config = fault::FaultPlanConfig::uniform(0.3, 42);
  fault::FaultPlan a(config);
  fault::FaultPlan b(config);
  for (int i = 0; i < 200; ++i) {
    net::Message m = make_message("m" + std::to_string(i), 64);
    bool uplink = (i % 3) != 0;
    net::FaultDecision da = a.decide(uplink, m);
    net::FaultDecision db = b.decide(uplink, m);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.extra_delay, db.extra_delay);
    EXPECT_EQ(da.corrupt_mask, db.corrupt_mask);
    EXPECT_EQ(da.corrupt_index, db.corrupt_index);
  }
  EXPECT_EQ(a.stats().drops, b.stats().drops);
  EXPECT_EQ(a.stats().corruptions, b.stats().corruptions);
  EXPECT_GT(a.stats().drops, 0u);  // 0.3 drop rate over 200 draws
}

TEST(FaultPlan, DirectionsUseIndependentStreams) {
  // The uplink decision sequence must not depend on how many downlink
  // messages interleave — each direction has its own stream.
  fault::FaultPlanConfig config = fault::FaultPlanConfig::uniform(0.3, 7);
  fault::FaultPlan pure(config);
  fault::FaultPlan mixed(config);
  for (int i = 0; i < 100; ++i) {
    net::Message m = make_message("m", 32);
    net::FaultDecision dp = pure.decide(true, m);
    mixed.decide(false, m);  // interleaved downlink traffic
    net::FaultDecision dm = mixed.decide(true, m);
    EXPECT_EQ(dp.drop, dm.drop);
    EXPECT_EQ(dp.duplicate, dm.duplicate);
    EXPECT_EQ(dp.corrupt_mask, dm.corrupt_mask);
  }
}

TEST(FaultPlan, ZeroRatesAreCleanPassThrough) {
  fault::FaultPlanConfig config;  // all rates zero
  fault::FaultPlan plan(config);
  for (int i = 0; i < 50; ++i) {
    net::FaultDecision d = plan.decide(i % 2 == 0, make_message("m", 16));
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.extra_delay, sim::SimTime::zero());
    EXPECT_EQ(d.corrupt_mask, 0);
  }
  EXPECT_EQ(plan.stats().drops, 0u);
  EXPECT_EQ(plan.stats().duplicates, 0u);
}

// ---------------------------------------------------------------------------
// Channel fault hooks

TEST(ChannelFaults, DropRidesTheArqPath) {
  sim::Simulation sim;
  auto channel = net::Channel::make(sim, net::ChannelConfig{});
  int drops_left = 2;
  channel->set_fault_hook(true, [&](const net::Message&) {
    net::FaultDecision d;
    if (drops_left > 0) {
      --drops_left;
      d.drop = true;
    }
    return d;
  });
  int delivered = 0;
  channel->b().set_handler([&](const net::Message&) { ++delivered; });
  channel->a().send(make_message("x", 100));
  sim.run();
  EXPECT_EQ(delivered, 1);  // ARQ retransmitted through the drops
  EXPECT_EQ(channel->drops(), 2u);  // two attempts dropped, third delivered
  EXPECT_EQ(channel->delivery_failures(), 0u);
}

TEST(ChannelFaults, DuplicateDeliversAnExtraCopy) {
  sim::Simulation sim;
  auto channel = net::Channel::make(sim, net::ChannelConfig{});
  bool armed = true;
  channel->set_fault_hook(true, [&](const net::Message&) {
    net::FaultDecision d;
    d.duplicate = armed;
    armed = false;  // only the first attempt duplicates
    return d;
  });
  int delivered = 0;
  channel->b().set_handler([&](const net::Message&) { ++delivered; });
  channel->a().send(make_message("x", 100));
  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(channel->duplicates(), 1u);
}

TEST(ChannelFaults, ExtraDelayShiftsArrival) {
  sim::Simulation sim;
  auto channel = net::Channel::make(sim, net::ChannelConfig{});
  channel->set_fault_hook(true, [&](const net::Message&) {
    net::FaultDecision d;
    d.extra_delay = sim::SimTime::seconds(3);
    return d;
  });
  sim::SimTime arrival;
  channel->b().set_handler([&](const net::Message&) { arrival = sim.now(); });
  channel->a().send(make_message("x", 100));
  sim.run();
  EXPECT_GE(arrival, sim::SimTime::seconds(3));
}

TEST(ChannelFaults, CorruptionIsCaughtByCrc) {
  sim::Simulation sim;
  auto channel = net::Channel::make(sim, net::ChannelConfig{});
  channel->set_fault_hook(true, [&](const net::Message&) {
    net::FaultDecision d;
    d.corrupt_mask = 0xff;
    d.corrupt_index = 3;
    return d;
  });
  bool intact = true;
  channel->b().set_handler(
      [&](const net::Message& m) { intact = edge::payload_intact(m); });
  channel->a().send(make_message("x", 100));
  sim.run();
  EXPECT_FALSE(intact);
  EXPECT_EQ(channel->corruptions(), 1u);
}

TEST(ChannelFaults, ArqExhaustionSurfacesTypedDeliveryFailure) {
  // A message dropped on every attempt must not vanish silently: after
  // max_retransmits the *sender* gets a delivery-failure callback with the
  // attempt count (the supervisor's cheapest failure signal).
  sim::Simulation sim;
  net::ChannelConfig config;
  config.max_retransmits = 3;
  config.retransmit_timeout = sim::SimTime::millis(10);
  auto channel = net::Channel::make(sim, config);
  channel->set_fault_hook(true, [](const net::Message&) {
    net::FaultDecision d;
    d.drop = true;
    return d;
  });
  int failures = 0;
  int reported_attempts = 0;
  std::string failed_name;
  channel->a().set_failure_handler(
      [&](const net::Message& m, int attempts) {
        ++failures;
        reported_attempts = attempts;
        failed_name = m.name;
      });
  int delivered = 0;
  channel->b().set_handler([&](const net::Message&) { ++delivered; });
  channel->a().send(make_message("doomed", 100));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(reported_attempts, 4);  // 1 original + 3 retransmits
  EXPECT_EQ(failed_name, "doomed");
  EXPECT_EQ(channel->delivery_failures(), 1u);
}

// ---------------------------------------------------------------------------
// Server-level faults

TEST(ServerFaults, CrashWipesStateAndDropsWhileDown) {
  sim::Simulation sim;
  auto channel = net::Channel::make(sim, net::ChannelConfig{});
  edge::EdgeServer server(sim, channel->b());
  std::vector<std::string> replies;
  channel->a().set_handler(
      [&](const net::Message& m) { replies.push_back(m.name); });

  // Pre-send a (fake) model file, then crash the server and poke it while
  // down: the poke vanishes, and after the restart the store is empty.
  edge::ModelFilesPayload files;
  files.files.push_back({"tiny.model", util::Bytes(1000, 0x77)});
  net::Message presend;
  presend.type = net::MessageType::kModelFiles;
  presend.name = "tiny";
  presend.payload = files.encode();
  channel->a().send(std::move(presend));

  server.schedule_crash(sim::SimTime::seconds(5), sim::SimTime::seconds(2));
  sim.schedule_at(sim::SimTime::seconds(6), [&] {
    channel->a().send(make_message("poke", 64));  // lands while down
  });
  sim.run();

  EXPECT_EQ(server.stats().crashes, 1);
  EXPECT_EQ(server.stats().restarts, 1);
  EXPECT_GE(server.stats().dropped_while_down, 1);
  EXPECT_EQ(server.stats().models_stored, 1);
  // The pre-send was ACKed before the crash; nothing else answered.
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(server.model_store().file_count(), 0u);  // wiped cold
  EXPECT_FALSE(server.down());                  // restarted
}

TEST(ServerFaults, CrashMidStoreSuppressesTheAck) {
  // The model-files ACK is scheduled after a disk-store delay; a crash in
  // that window must kill it (boot-epoch guard), not ACK from the grave.
  sim::Simulation sim;
  auto channel = net::Channel::make(sim, net::ChannelConfig{});
  edge::EdgeServerConfig server_config;
  server_config.store_Bps = 1e6;  // slow disk: a wide crash window
  edge::EdgeServer server(sim, channel->b(), server_config);
  int acks = 0;
  channel->a().set_handler([&](const net::Message&) { ++acks; });

  edge::ModelFilesPayload files;
  files.files.push_back({"big.model", util::Bytes(40 << 20, 0x77)});
  net::Message presend;
  presend.type = net::MessageType::kModelFiles;
  presend.name = "big";
  presend.payload = files.encode();

  // 40 MB upload at 30 Mbps arrives around t=11s; persisting it at
  // 1 MB/s takes ~42 s more. Crash inside the store window.
  channel->a().send(std::move(presend));
  server.schedule_crash(sim::SimTime::seconds(15), sim::SimTime::seconds(1));
  sim.run();
  EXPECT_EQ(server.stats().crashes, 1);
  EXPECT_EQ(acks, 0);
}

TEST(ServerFaults, StallDefersProcessing) {
  sim::Simulation sim;
  auto channel = net::Channel::make(sim, net::ChannelConfig{});
  edge::EdgeServer server(sim, channel->b());
  sim::SimTime reply_at;
  channel->a().set_handler([&](const net::Message&) { reply_at = sim.now(); });

  server.schedule_stall(sim::SimTime::seconds(1), sim::SimTime::seconds(2));
  sim.schedule_at(sim::SimTime::seconds(1.5), [&] {
    // Lands mid-stall; without models it draws a "model_missing:" reply —
    // but only once the stall lifts at t=3.
    edge::SnapshotPayload payload;
    payload.program = "(function() { m = __loadModel(\"ghost\"); })();\n";
    net::Message msg;
    msg.type = net::MessageType::kSnapshot;
    msg.name = "ghost";
    msg.payload = payload.encode();
    channel->a().send(std::move(msg));
  });
  sim.run();
  EXPECT_GE(server.stats().stalled_messages, 1);
  EXPECT_GE(reply_at, sim::SimTime::seconds(3));
}

TEST(ServerFaults, QueueDeadlineExpiresOverdueJobs) {
  // Deadline-aware cancellation in the serving scheduler: a queued job
  // whose deadline passes while an earlier job hogs the lane is cancelled
  // and its on_expired fires (the edge server turns this into "expired:").
  sim::Simulation sim;
  serve::SchedulerConfig config;
  config.replicas = 1;
  config.drop_expired = true;
  serve::Scheduler scheduler(sim, config);

  int done = 0;
  int expired = 0;
  scheduler.submit_opaque(1.0, [&](const serve::RequestTiming&) { ++done; });
  scheduler.submit_opaque(
      0.1, [&](const serve::RequestTiming&) { ++done; },
      sim.now() + sim::SimTime::seconds(0.5),
      [&](const serve::RequestTiming&) { ++expired; });
  sim.run();
  EXPECT_EQ(done, 1);     // only the first job ran
  EXPECT_EQ(expired, 1);  // the second timed out in queue
  EXPECT_EQ(scheduler.stats().expired, 1u);
}

// ---------------------------------------------------------------------------
// Supervisor primitives

TEST(RetryBackoff, DeterministicGrowthWithCap) {
  edge::SupervisorConfig config;
  config.backoff_base = sim::SimTime::millis(100);
  config.backoff_factor = 2.0;
  config.backoff_cap = sim::SimTime::seconds(1.0);
  config.jitter = 0.2;
  config.jitter_seed = 9;
  edge::RetryBackoff a(config);
  edge::RetryBackoff b(config);
  sim::SimTime prev = sim::SimTime::zero();
  for (int attempt = 1; attempt <= 8; ++attempt) {
    sim::SimTime da = a.delay(attempt);
    sim::SimTime db = b.delay(attempt);
    EXPECT_EQ(da, db);  // same seed, same jitter stream
    // Within the jittered envelope of base * 2^(n-1), capped at 1s.
    double nominal = std::min(0.1 * std::pow(2.0, attempt - 1), 1.0);
    EXPECT_GE(da.to_seconds(), nominal * 0.8 - 1e-9);
    EXPECT_LE(da.to_seconds(), nominal * 1.2 + 1e-9);
    if (attempt > 1 && attempt < 4) EXPECT_GT(da, prev);
    prev = da;
  }
}

TEST(CircuitBreaker, OpensHalfOpensAndRecloses) {
  edge::CircuitBreaker breaker(3, sim::SimTime::seconds(10), 1);
  using State = edge::CircuitBreaker::State;
  sim::SimTime t = sim::SimTime::seconds(1);

  EXPECT_EQ(breaker.state(t), State::kClosed);
  breaker.record_failure(t);
  breaker.record_failure(t);
  EXPECT_TRUE(breaker.allow(t));  // still closed at 2 failures
  breaker.record_failure(t);
  EXPECT_EQ(breaker.state(t), State::kOpen);
  EXPECT_FALSE(breaker.allow(t));
  EXPECT_EQ(breaker.times_opened(), 1);

  // Cooldown elapses → half-open admits one probe, refuses a stampede.
  sim::SimTime probe_time = t + sim::SimTime::seconds(11);
  EXPECT_EQ(breaker.state(probe_time), State::kHalfOpen);
  EXPECT_TRUE(breaker.allow(probe_time));
  EXPECT_FALSE(breaker.allow(probe_time));  // only one probe in flight

  // Probe succeeds → closed again; failures reset.
  breaker.record_success(probe_time);
  EXPECT_EQ(breaker.state(probe_time), State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_TRUE(breaker.allow(probe_time));
}

TEST(CircuitBreaker, HalfOpenFailureReopens) {
  edge::CircuitBreaker breaker(2, sim::SimTime::seconds(5), 1);
  using State = edge::CircuitBreaker::State;
  sim::SimTime t = sim::SimTime::seconds(1);
  breaker.record_failure(t);
  breaker.record_failure(t);
  EXPECT_EQ(breaker.state(t), State::kOpen);

  sim::SimTime probe_time = t + sim::SimTime::seconds(6);
  EXPECT_TRUE(breaker.allow(probe_time));
  breaker.record_failure(probe_time);  // probe failed
  EXPECT_EQ(breaker.state(probe_time), State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2);
  // The new cooldown runs from the re-open.
  EXPECT_FALSE(breaker.allow(probe_time + sim::SimTime::seconds(4)));
  EXPECT_TRUE(breaker.allow(probe_time + sim::SimTime::seconds(6)));
}

// ---------------------------------------------------------------------------
// Supervisor end to end

RuntimeConfig supervised_config(edge::AppBundle& bundle) {
  RuntimeConfig config;
  config.client.supervisor.enabled = true;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  return config;
}

TEST(Supervisor, HedgeLocalWinWhenServerDies) {
  // The server dies right after the click and stays dead; no secondary.
  // The hedge starts quickly, finishes locally, and the supervisor takes
  // that answer — the app completes with the remote side gone.
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config = supervised_config(bundle);
  config.client.supervisor.hedge_after = sim::SimTime::millis(10);
  fault::CrashSpec crash;
  crash.first_at = config.click_at + sim::SimTime::millis(1);
  crash.downtime = sim::SimTime::seconds(1000);
  fault::FaultPlanConfig faults;
  faults.crashes.push_back(crash);
  config.faults = faults;
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();

  EXPECT_TRUE(result.timeline.hedged);
  EXPECT_TRUE(result.timeline.hedge_local_win);
  EXPECT_TRUE(result.timeline.local_fallback);
  EXPECT_FALSE(result.offloaded);
  EXPECT_GE(runtime.client().supervisor_stats().hedge_local_wins, 1);
  RunResult local = run_scenario(tiny_model(), Scenario::kClientOnly);
  EXPECT_EQ(result.result_text, local.result_text);
}

TEST(Supervisor, HedgeRemoteWinCancelsTheLocalRun) {
  // A brief server stall delays the result enough to trigger the hedge,
  // but the remote still finishes first: the hedge is cancelled and its
  // compute counted as waste.
  double local_s =
      run_scenario(tiny_model(), Scenario::kClientOnly).inference_seconds;
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config = supervised_config(bundle);
  config.client.supervisor.hedge_after = sim::SimTime::seconds(0.05 * local_s);
  fault::StallSpec stall;
  stall.at = config.click_at;
  stall.duration = sim::SimTime::seconds(0.1 * local_s);
  fault::FaultPlanConfig faults;
  faults.stalls.push_back(stall);
  config.faults = faults;
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();

  EXPECT_TRUE(result.offloaded);
  EXPECT_TRUE(result.timeline.hedged);
  EXPECT_FALSE(result.timeline.hedge_local_win);
  EXPECT_GT(result.timeline.hedge_wasted_s, 0);
  EXPECT_EQ(runtime.client().supervisor_stats().hedge_remote_wins, 1);
  RunResult clean = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  EXPECT_EQ(result.result_text, clean.result_text);
}

TEST(Supervisor, CompletesEveryClickUnderFaultsAndCrashes) {
  // The headline robustness property: 5% message faults on both
  // directions plus a periodically crashing primary, and every inference
  // still completes (failing over, retrying, or falling back locally).
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config = supervised_config(bundle);
  config.fleet.spares = 1;
  fault::FaultPlanConfig faults = fault::FaultPlanConfig::uniform(0.05, 11);
  fault::CrashSpec crash;
  crash.first_at = config.click_at + sim::SimTime::millis(1);
  crash.downtime = sim::SimTime::seconds(5);
  crash.period = sim::SimTime::seconds(45);
  crash.count = 3;
  faults.crashes.push_back(crash);
  config.faults = faults;
  OffloadingRuntime runtime(config, std::move(bundle));

  RunResult first = runtime.run();
  EXPECT_FALSE(first.result_text.empty());
  std::string expected = first.result_text;
  for (int i = 0; i < 3; ++i) {
    runtime.client().click_at(runtime.simulation().now() +
                              sim::SimTime::seconds(20));
    runtime.simulation().run();
    ASSERT_TRUE(runtime.client().finished()) << "click " << i << " hung";
    EXPECT_EQ(runtime.client().result_text(), expected);
  }
}

TEST(Supervisor, UnsupervisedClientHangsWhereSupervisedCompletes) {
  // The same crash schedule, supervisor off: the snapshot lands on a dead
  // server and nothing ever answers. The runtime reports the stall rather
  // than completing — which is exactly what the supervisor exists to fix.
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  fault::CrashSpec crash;
  crash.first_at = config.click_at + sim::SimTime::millis(1);
  crash.downtime = sim::SimTime::seconds(1000);
  fault::FaultPlanConfig faults;
  faults.crashes.push_back(crash);
  config.faults = faults;
  OffloadingRuntime runtime(config, std::move(bundle));
  EXPECT_THROW(runtime.run(), std::runtime_error);
}

TEST(Supervisor, FaultedRunsAreBitReproducible) {
  // Two runs with identical seeds and fault plans must agree on every
  // observable: timestamps to the nanosecond, retry counts, the answer.
  auto run_once = [](RunResult& out, edge::SupervisorStats& stats) {
    edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
    RuntimeConfig config;
    config.client.supervisor.enabled = true;
    config.fleet.spares = 1;
    config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
    fault::FaultPlanConfig faults = fault::FaultPlanConfig::uniform(0.08, 23);
    fault::CrashSpec crash;
    crash.first_at = config.click_at + sim::SimTime::millis(2);
    crash.downtime = sim::SimTime::seconds(3);
    faults.crashes.push_back(crash);
    config.faults = faults;
    OffloadingRuntime runtime(config, std::move(bundle));
    out = runtime.run();
    stats = runtime.client().supervisor_stats();
  };
  RunResult a, b;
  edge::SupervisorStats sa, sb;
  run_once(a, sa);
  run_once(b, sb);

  EXPECT_EQ(a.result_text, b.result_text);
  EXPECT_EQ(a.offloaded, b.offloaded);
  ASSERT_TRUE(a.timeline.finished && b.timeline.finished);
  EXPECT_EQ(a.timeline.finished->ns(), b.timeline.finished->ns());
  EXPECT_EQ(a.timeline.clicked.ns(), b.timeline.clicked.ns());
  EXPECT_EQ(a.timeline.retries, b.timeline.retries);
  EXPECT_EQ(a.timeline.backoff_wait_s, b.timeline.backoff_wait_s);
  EXPECT_EQ(a.timeline.recovery_s, b.timeline.recovery_s);
  EXPECT_EQ(a.timeline.server_index, b.timeline.server_index);
  EXPECT_EQ(sa.retries, sb.retries);
  EXPECT_EQ(sa.deadline_expiries, sb.deadline_expiries);
  EXPECT_EQ(sa.failovers, sb.failovers);
  EXPECT_EQ(sa.model_represends, sb.model_represends);
  EXPECT_EQ(sa.backoff_wait_s, sb.backoff_wait_s);
}

TEST(Supervisor, DegenerateConfigMatchesUnsupervisedRun) {
  // No faults + supervisor defaults (disabled): the run must be
  // bit-identical to the plain pipeline — the robustness layer costs
  // nothing when everything is healthy.
  RunResult plain = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();
  EXPECT_EQ(result.result_text, plain.result_text);
  EXPECT_EQ(result.inference_seconds, plain.inference_seconds);
  EXPECT_EQ(result.timeline.finished->ns(), plain.timeline.finished->ns());
  EXPECT_EQ(result.breakdown.retry_backoff, 0.0);
  EXPECT_EQ(result.breakdown.crash_recovery, 0.0);
}

}  // namespace
}  // namespace offload::core
