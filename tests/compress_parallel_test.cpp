// Property tests for the block-framed mlzma container: round-trips across
// the single-stream/blocked size threshold and redundancy levels, byte
// reproducibility at any thread count, ratio bound vs the single stream,
// and corruption detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "src/util/bytes.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/vmsynth/compress.h"
#include "src/vmsynth/vmimage.h"

namespace {

using namespace offload;

constexpr std::size_t kBlockSize = 1 << 20;

struct PoolGuard {
  ~PoolGuard() { util::set_default_pool_threads(0); }
};

util::Bytes make_content(std::uint64_t size, double redundancy,
                         std::uint64_t seed) {
  return vmsynth::synthetic_file_content(size, redundancy, seed);
}

TEST(CompressFramed, RoundTripAcrossSizesAndRedundancy) {
  PoolGuard guard;
  util::set_default_pool_threads(4);
  std::uint64_t seed = 1;
  for (std::uint64_t size :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{1000},
        std::uint64_t{kBlockSize - 1}, std::uint64_t{kBlockSize},
        std::uint64_t{kBlockSize + 1}, std::uint64_t{3 * kBlockSize + 12345}}) {
    for (double redundancy : {0.0, 0.5, 0.9}) {
      util::Bytes input = make_content(size, redundancy, seed++);
      util::Bytes compressed =
          vmsynth::compress(std::span<const std::uint8_t>(input));
      util::Bytes restored =
          vmsynth::decompress(std::span<const std::uint8_t>(compressed));
      ASSERT_EQ(input, restored)
          << "size=" << size << " redundancy=" << redundancy;
    }
  }
}

TEST(CompressFramed, MagicSelectionBySize) {
  util::Bytes small = make_content(kBlockSize, 0.5, 11);
  util::Bytes c1 = vmsynth::compress(std::span<const std::uint8_t>(small));
  ASSERT_GE(c1.size(), 4u);
  EXPECT_EQ(std::string(c1.begin(), c1.begin() + 4), "MLZ1");

  util::Bytes large = make_content(kBlockSize + 1, 0.5, 12);
  util::Bytes c2 = vmsynth::compress(std::span<const std::uint8_t>(large));
  ASSERT_GE(c2.size(), 4u);
  EXPECT_EQ(std::string(c2.begin(), c2.begin() + 4), "MLZB");
}

TEST(CompressFramed, BytesIdenticalAtAnyThreadCount) {
  PoolGuard guard;
  util::Bytes input = make_content(5 * kBlockSize + 777, 0.6, 13);
  util::set_default_pool_threads(1);
  util::Bytes seq = vmsynth::compress(std::span<const std::uint8_t>(input));
  util::set_default_pool_threads(4);
  util::Bytes par = vmsynth::compress(std::span<const std::uint8_t>(input));
  EXPECT_EQ(seq, par);
}

TEST(CompressFramed, RatioWithinFivePercentOfSingleStream) {
  for (double redundancy : {0.4, 0.57, 0.8}) {
    util::Bytes input = make_content(4 * kBlockSize, redundancy, 14);
    const auto span = std::span<const std::uint8_t>(input);
    const double blocked = static_cast<double>(vmsynth::compress(span).size());
    const double single =
        static_cast<double>(vmsynth::compress_single_stream(span).size());
    EXPECT_LE(blocked, single * 1.05)
        << "redundancy=" << redundancy << " blocked=" << blocked
        << " single=" << single;
  }
}

TEST(CompressFramed, LegacySingleStreamStillDecodes) {
  // decompress() must keep reading the pre-framing format regardless of
  // input size, since stored overlays may carry it.
  util::Bytes input = make_content(2 * kBlockSize, 0.5, 15);
  util::Bytes legacy =
      vmsynth::compress_single_stream(std::span<const std::uint8_t>(input));
  EXPECT_EQ(std::string(legacy.begin(), legacy.begin() + 4), "MLZ1");
  util::Bytes restored =
      vmsynth::decompress(std::span<const std::uint8_t>(legacy));
  EXPECT_EQ(input, restored);
}

TEST(CompressFramed, CorruptionDetected) {
  util::Bytes input = make_content(2 * kBlockSize + 99, 0.6, 16);
  util::Bytes compressed =
      vmsynth::compress(std::span<const std::uint8_t>(input));

  // Bad magic.
  util::Bytes bad_magic = compressed;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(
      vmsynth::decompress(std::span<const std::uint8_t>(bad_magic)),
      util::DecodeError);

  // Truncation at various points (header, frame table, payload).
  for (std::size_t keep :
       {std::size_t{3}, std::size_t{8}, compressed.size() / 2,
        compressed.size() - 1}) {
    util::Bytes truncated(compressed.begin(),
                          compressed.begin() + static_cast<std::ptrdiff_t>(
                                                   keep));
    EXPECT_THROW(
        vmsynth::decompress(std::span<const std::uint8_t>(truncated)),
        util::DecodeError)
        << "keep=" << keep;
  }

  // Payload bit flips must be caught (by sequence bounds checks or the
  // whole-output CRC).
  util::Pcg32 rng(17);
  for (int i = 0; i < 16; ++i) {
    util::Bytes flipped = compressed;
    const std::size_t pos =
        20 + rng.next_u64() % (flipped.size() - 20);
    flipped[pos] ^= static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
    try {
      util::Bytes out =
          vmsynth::decompress(std::span<const std::uint8_t>(flipped));
      // Extremely unlikely, but if it decodes it must decode wrong data —
      // equality would mean the flip was silently ignored.
      EXPECT_NE(out, input) << "pos=" << pos;
    } catch (const util::DecodeError&) {
      // Expected: corruption detected.
    }
  }
}

}  // namespace
