// Tests for the parallel kernel engine: thread-pool semantics, bit-exact
// results at any thread count (the pool partitions disjoint output ranges
// and every element is accumulated in a fixed order), grouped convolution
// against a naive reference, and the zero-allocation steady state of the
// scratch arena.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/dense.h"
#include "src/nn/kernels.h"
#include "src/nn/lrn.h"
#include "src/nn/model_io.h"
#include "src/nn/models.h"
#include "src/nn/network.h"
#include "src/nn/pool.h"
#include "src/util/arena.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace {

using namespace offload;
using nn::Shape;
using nn::Tensor;

/// Restores the default pool to the environment-derived size on scope exit
/// so tests do not leak thread-count overrides into each other.
struct PoolGuard {
  ~PoolGuard() { util::set_default_pool_threads(0); }
};

// ---------------------------------------------------------------------------
// ThreadPool semantics

TEST(ThreadPool, CoversRangeExactlyOnce) {
  util::ThreadPool pool(4);
  for (std::int64_t n : {0, 1, 7, 64, 1000, 4097}) {
    for (std::int64_t grain : {1, 3, 64, 100000}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      auto mark = [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      };
      pool.parallel_for(0, n, grain, mark);
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "n=" << n << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, SizeOneRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  auto check = [&](std::int64_t, std::int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  };
  pool.parallel_for(0, 100, 1, check);
}

TEST(ThreadPool, PropagatesException) {
  util::ThreadPool pool(4);
  auto thrower = [&](std::int64_t lo, std::int64_t) {
    if (lo >= 0) throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.parallel_for(0, 100, 1, thrower), std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<std::int64_t> sum{0};
  auto add = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  };
  pool.parallel_for(0, 10, 1, add);
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedCallRunsInlineWithoutDeadlock) {
  util::ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  auto inner = [&](std::int64_t l2, std::int64_t h2) {
    for (std::int64_t j = l2; j < h2; ++j) total.fetch_add(j);
  };
  auto outer = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      // A kernel calling parallel_for from inside a chunk must not block
      // on the already-busy pool.
      pool.parallel_for(0, 10, 1, inner);
    }
  };
  pool.parallel_for(0, 8, 1, outer);
  EXPECT_EQ(total.load(), 8 * 45);
}

TEST(ThreadPool, DefaultPoolResize) {
  PoolGuard guard;
  util::set_default_pool_threads(3);
  EXPECT_EQ(util::default_pool().size(), 3u);
  util::set_default_pool_threads(1);
  EXPECT_EQ(util::default_pool().size(), 1u);
}

// ---------------------------------------------------------------------------
// Bit-exactness: 4 threads vs the exact sequential fallback

Tensor run_layer(const nn::Layer& layer, const Tensor& in) {
  const Tensor* ins[] = {&in};
  return layer.forward(ins);
}

/// Runs `layer` on `in` at 1 and 4 threads and requires bitwise-identical
/// output.
void expect_thread_invariant(const nn::Layer& layer, const Tensor& in) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  Tensor seq = run_layer(layer, in);
  util::set_default_pool_threads(4);
  Tensor par = run_layer(layer, in);
  ASSERT_EQ(seq.shape(), par.shape()) << layer.config_str();
  ASSERT_EQ(std::memcmp(seq.data().data(), par.data().data(),
                        seq.data().size() * sizeof(float)),
            0)
      << "thread-count-dependent output for " << layer.config_str();
}

TEST(ParallelBitExact, ConvRandomizedShapes) {
  util::Pcg32 rng(77);
  struct Case {
    std::int64_t in_ch, out_ch, k, stride, pad, groups, hw;
  };
  const Case cases[] = {
      {3, 8, 3, 1, 1, 1, 17},   {4, 6, 5, 2, 2, 2, 23},
      {8, 8, 1, 1, 0, 1, 31},   {6, 12, 3, 2, 0, 3, 19},
      {16, 16, 3, 1, 1, 4, 14}, {5, 10, 7, 3, 3, 1, 29},
      {12, 8, 2, 2, 1, 4, 16},  {1, 4, 4, 1, 2, 1, 9},
  };
  for (const Case& c : cases) {
    nn::ConvLayer conv("c", {.in_channels = c.in_ch, .out_channels = c.out_ch,
                             .kernel = c.k, .stride = c.stride, .pad = c.pad,
                             .groups = c.groups});
    conv.init_params(rng);
    Tensor in = Tensor::random_uniform(Shape{c.in_ch, c.hw, c.hw}, rng);
    expect_thread_invariant(conv, in);
  }
}

TEST(ParallelBitExact, PoolFcLrnRelu) {
  util::Pcg32 rng(78);
  Tensor image = Tensor::random_uniform(Shape{13, 27, 27}, rng);

  nn::PoolLayer maxpool("p", {.kernel = 3, .stride = 2, .pad = 1}, false);
  expect_thread_invariant(maxpool, image);

  nn::PoolLayer avgpool("a", {.kernel = 2, .stride = 2, .pad = 0}, true);
  expect_thread_invariant(avgpool, image);

  nn::LrnLayer lrn("n", nn::LrnConfig{});
  expect_thread_invariant(lrn, image);

  nn::ReluLayer relu("r");
  expect_thread_invariant(relu, image);

  nn::FullyConnectedLayer fc("fc", 13 * 27 * 27, 37);
  fc.init_params(rng);
  expect_thread_invariant(fc, image.reshaped(Shape{13 * 27 * 27}));
}

TEST(ParallelBitExact, WholeNetworkForward) {
  PoolGuard guard;
  auto net = nn::build_agenet(5);
  util::Pcg32 rng(79);
  Tensor in = Tensor::random_uniform(Shape{3, 227, 227}, rng, 0.0f, 1.0f);
  util::set_default_pool_threads(1);
  Tensor seq = net->forward(in).output;
  util::set_default_pool_threads(4);
  Tensor par = net->forward(in).output;
  ASSERT_EQ(std::memcmp(seq.data().data(), par.data().data(),
                        seq.data().size() * sizeof(float)),
            0);
}

// ---------------------------------------------------------------------------
// Grouped convolution against a naive reference

Tensor reference_grouped_conv(const Tensor& in, const Tensor& weights,
                              const Tensor& bias, const nn::ConvConfig& cfg) {
  const std::int64_t C = in.shape()[0], H = in.shape()[1], W = in.shape()[2];
  const std::int64_t K = cfg.kernel, S = cfg.stride, P = cfg.pad;
  const std::int64_t G = cfg.groups;
  const std::int64_t Cg = C / G, Mg = cfg.out_channels / G;
  const std::int64_t OH = (H + 2 * P - K) / S + 1;
  const std::int64_t OW = (W + 2 * P - K) / S + 1;
  Tensor out(Shape{cfg.out_channels, OH, OW});
  for (std::int64_t m = 0; m < cfg.out_channels; ++m) {
    const std::int64_t g = m / Mg;
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        double acc = bias[m];
        for (std::int64_t c = 0; c < Cg; ++c) {
          for (std::int64_t kh = 0; kh < K; ++kh) {
            for (std::int64_t kw = 0; kw < K; ++kw) {
              const std::int64_t ih = oh * S - P + kh;
              const std::int64_t iw = ow * S - P + kw;
              if (ih < 0 || ih >= H || iw < 0 || iw >= W) continue;
              const float a = in.at(g * Cg + c, ih, iw);
              const float b =
                  weights[((m * Cg + c) * K + kh) * K + kw];
              acc += static_cast<double>(a) * static_cast<double>(b);
            }
          }
        }
        out.at(m, oh, ow) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

TEST(GroupedConv, MatchesNaiveReference) {
  // The naive reference is fp32; int8 (a CI matrix cell) legitimately
  // perturbs outputs, so compare on the simd fp32 path in that case.
  nn::ScopedKernelBackend fp32(nn::active_kernel_ops().quantized
                                   ? nn::KernelBackend::kSimd
                                   : nn::active_kernel_backend());
  util::Pcg32 rng(80);
  for (std::int64_t groups : {1, 2, 4}) {
    nn::ConvConfig cfg{.in_channels = 8, .out_channels = 12, .kernel = 3,
                       .stride = 2, .pad = 1, .groups = groups};
    nn::ConvLayer conv("c", cfg);
    conv.init_params(rng);
    Tensor in = Tensor::random_uniform(Shape{8, 15, 15}, rng);
    Tensor fast = run_layer(conv, in);
    Tensor slow = reference_grouped_conv(in, conv.weights(), conv.bias(), cfg);
    ASSERT_EQ(fast.shape(), slow.shape());
    for (std::int64_t i = 0; i < fast.elements(); ++i) {
      ASSERT_NEAR(fast[i], slow[i], 1e-4) << "groups=" << groups << " i=" << i;
    }
  }
}

TEST(GroupedConv, RejectsIndivisibleChannels) {
  EXPECT_THROW(nn::ConvLayer("c", {.in_channels = 6, .out_channels = 8,
                                   .kernel = 3, .groups = 4}),
               std::invalid_argument);
}

TEST(GroupedConv, DescriptionRoundTrip) {
  nn::Network net("g");
  net.add(std::make_unique<nn::InputLayer>("data", Shape{8, 12, 12}));
  net.add(std::make_unique<nn::ConvLayer>(
      "conv_g", nn::ConvConfig{.in_channels = 8, .out_channels = 8,
                               .kernel = 3, .stride = 1, .pad = 1,
                               .groups = 2}));
  net.init_params(3);
  const std::string desc = nn::save_description(net);
  EXPECT_NE(desc.find("g=2"), std::string::npos) << desc;
  auto parsed = nn::parse_description(desc);
  const auto& conv =
      dynamic_cast<const nn::ConvLayer&>(parsed->layer(1));
  EXPECT_EQ(conv.config().groups, 2);

  // Weights survive the save/load cycle and produce identical outputs.
  util::Bytes blob = nn::save_weights(net);
  nn::load_weights(*parsed, blob);
  util::Pcg32 rng(81);
  Tensor in = Tensor::random_uniform(Shape{8, 12, 12}, rng);
  Tensor a = net.forward(in).output;
  Tensor b = parsed->forward(in).output;
  ASSERT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.data().size() * sizeof(float)),
            0);
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state

TEST(ScratchArena, FrameRewindReusesBlock) {
  util::ScratchArena arena;
  std::uint64_t after_warmup = 0;
  {
    util::ScratchArena::Frame f(arena);
    f.floats(1000);
    f.bytes(4096);
  }
  {
    util::ScratchArena::Frame f(arena);
    f.floats(500);
    f.floats(800);
    after_warmup = arena.block_allocations();
  }
  for (int i = 0; i < 10; ++i) {
    util::ScratchArena::Frame f(arena);
    float* p = f.floats(1000);
    p[0] = 1.0f;  // must be writable
    f.bytes(4096);
  }
  EXPECT_EQ(arena.block_allocations(), after_warmup);
}

TEST(ScratchArena, AlignedAllocations) {
  util::ScratchArena arena;
  util::ScratchArena::Frame f(arena);
  for (std::size_t n : {1u, 3u, 100u, 1000u}) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f.floats(n)) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f.bytes(n)) % 64, 0u);
  }
}

TEST(ZeroAlloc, SteadyStateForwardDoesNotAllocateScratch) {
  PoolGuard guard;
  // Single-threaded so all kernel scratch comes from this thread's arena.
  util::set_default_pool_threads(1);
  auto net = nn::build_tiny_cnn(9);
  util::Pcg32 rng(82);
  Tensor in = Tensor::random_uniform(Shape{3, 32, 32}, rng, 0.0f, 1.0f);
  // Warm-up: grows the arena to the network's peak scratch demand and
  // packs the conv weights.
  (void)net->forward(in);
  (void)net->forward(in);
  const std::uint64_t blocks = util::ScratchArena::local().block_allocations();
  for (int i = 0; i < 5; ++i) (void)net->forward(in);
  EXPECT_EQ(util::ScratchArena::local().block_allocations(), blocks)
      << "steady-state forward passes must not allocate scratch blocks";
}

}  // namespace
