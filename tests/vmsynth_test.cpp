// Tests for the VM-synthesis substrate: the mlzma compressor, synthetic VM
// images, and chunk-deduplicated overlays.
#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/vmsynth/compress.h"
#include "src/vmsynth/overlay.h"
#include "src/vmsynth/vmimage.h"

namespace offload::vmsynth {
namespace {

util::Bytes bytes_of(std::string_view s) {
  return util::Bytes(s.begin(), s.end());
}

TEST(Compress, EmptyInput) {
  util::Bytes empty;
  util::Bytes c = compress(std::span<const std::uint8_t>(empty));
  EXPECT_EQ(decompress(std::span<const std::uint8_t>(c)), empty);
}

TEST(Compress, TinyInputs) {
  for (std::size_t n = 1; n <= 8; ++n) {
    util::Bytes in(n, 0xab);
    util::Bytes c = compress(std::span<const std::uint8_t>(in));
    EXPECT_EQ(decompress(std::span<const std::uint8_t>(c)), in) << "n=" << n;
  }
}

TEST(Compress, RepetitiveInputShrinksALot) {
  util::Bytes in;
  for (int i = 0; i < 1000; ++i) {
    auto chunk = bytes_of("the quick brown fox jumps over the lazy dog. ");
    in.insert(in.end(), chunk.begin(), chunk.end());
  }
  util::Bytes c = compress(std::span<const std::uint8_t>(in));
  EXPECT_LT(c.size(), in.size() / 10);
  EXPECT_EQ(decompress(std::span<const std::uint8_t>(c)), in);
}

TEST(Compress, AllSameByte) {
  util::Bytes in(100'000, 0x42);
  util::Bytes c = compress(std::span<const std::uint8_t>(in));
  EXPECT_LT(c.size(), 2'000u);  // run-length via overlapping matches
  EXPECT_EQ(decompress(std::span<const std::uint8_t>(c)), in);
}

TEST(Compress, RandomInputDoesNotExplode) {
  util::Pcg32 rng(99);
  util::Bytes in(200'000);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u32());
  util::Bytes c = compress(std::span<const std::uint8_t>(in));
  // Incompressible data should cost only a tiny framing overhead.
  EXPECT_LT(c.size(), in.size() + in.size() / 100 + 64);
  EXPECT_EQ(decompress(std::span<const std::uint8_t>(c)), in);
}

TEST(Compress, LongLiteralRunsAndLongMatches) {
  // Exercise the 15/255 length-extension encoding in both fields.
  util::Pcg32 rng(7);
  util::Bytes in(1000);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_u32());
  // Append a 5000-byte match of the first 5000... use a repeated block.
  util::Bytes block(in);
  for (int i = 0; i < 6; ++i) in.insert(in.end(), block.begin(), block.end());
  util::Bytes c = compress(std::span<const std::uint8_t>(in));
  EXPECT_EQ(decompress(std::span<const std::uint8_t>(c)), in);
  EXPECT_LT(c.size(), 2 * block.size());
}

TEST(Compress, CorruptInputThrows) {
  util::Bytes in = bytes_of("hello hello hello hello hello hello");
  util::Bytes c = compress(std::span<const std::uint8_t>(in));
  util::Bytes bad_magic = c;
  bad_magic[0] = 'X';
  EXPECT_THROW(decompress(std::span<const std::uint8_t>(bad_magic)),
               util::DecodeError);
  util::Bytes truncated(c.begin(), c.begin() + static_cast<long>(c.size() / 2));
  EXPECT_THROW(decompress(std::span<const std::uint8_t>(truncated)),
               util::DecodeError);
}

class CompressRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(CompressRoundTrip, SyntheticContentAllRedundancies) {
  const double redundancy = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Bytes in = synthetic_file_content(50'000 + seed * 7'777, redundancy,
                                            seed);
    util::Bytes c = compress(std::span<const std::uint8_t>(in));
    EXPECT_EQ(decompress(std::span<const std::uint8_t>(c)), in)
        << "redundancy=" << redundancy << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompressRoundTrip,
                         ::testing::Values(0.0, 0.2, 0.5, 0.78, 0.95));

TEST(Compress, RedundancyIncreasesRatio) {
  util::Bytes low = synthetic_file_content(300'000, 0.1, 5);
  util::Bytes high = synthetic_file_content(300'000, 0.9, 5);
  EXPECT_GT(compression_ratio(std::span<const std::uint8_t>(high)),
            compression_ratio(std::span<const std::uint8_t>(low)) * 2);
}

TEST(VmImage, PutFindReplace) {
  VmImage image;
  image.put("/a", bytes_of("one"));
  image.put("/b", bytes_of("two"));
  ASSERT_NE(image.find("/a"), nullptr);
  EXPECT_EQ(image.find("/a")->content, bytes_of("one"));
  EXPECT_EQ(image.find("/missing"), nullptr);
  image.put("/a", bytes_of("replaced"));
  EXPECT_EQ(image.find("/a")->content, bytes_of("replaced"));
  EXPECT_EQ(image.files().size(), 2u);
  EXPECT_EQ(image.total_bytes(), 8u + 3u);
}

TEST(VmImage, DigestDetectsChanges) {
  VmImage a;
  a.put("/x", bytes_of("same"));
  VmImage b;
  b.put("/x", bytes_of("same"));
  EXPECT_EQ(a.digest(), b.digest());
  b.put("/x", bytes_of("diff"));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(VmImage, SyntheticContentDeterministic) {
  EXPECT_EQ(synthetic_file_content(10'000, 0.5, 42),
            synthetic_file_content(10'000, 0.5, 42));
  EXPECT_NE(synthetic_file_content(10'000, 0.5, 42),
            synthetic_file_content(10'000, 0.5, 43));
}

TEST(Overlay, RoundTripSynthesis) {
  VmImage base = make_base_image(1);
  SystemBundleSizes sizes;
  sizes.browser_bytes = 400'000;
  sizes.libraries_bytes = 500'000;
  sizes.server_program_bytes = 50'000;
  std::vector<std::pair<std::string, util::Bytes>> model = {
      {"model.weights", synthetic_file_content(200'000, 0.0, 9)}};
  VmImage target = make_customized_image(base, sizes, model);

  VmOverlay overlay = create_overlay(base, target);
  VmImage rebuilt = synthesize(base, overlay);
  EXPECT_EQ(rebuilt.digest(), target.digest());
  EXPECT_EQ(rebuilt.files().size(), target.files().size());
}

TEST(Overlay, UnchangedFilesCostNothing) {
  VmImage base = make_base_image(1);
  VmImage target = base;
  target.put("/new/file", bytes_of("tiny addition"));
  VmOverlay overlay = create_overlay(base, target);
  EXPECT_EQ(overlay.stats.new_files, 1u);
  EXPECT_EQ(overlay.stats.changed_files, 0u);
  EXPECT_LT(overlay.payload.size(), 600u);
}

TEST(Overlay, BaseChunksAreReused) {
  VmImage base;
  base.put("/big", synthetic_file_content(400'000, 0.0, 3));
  VmImage target = base;
  // Append to the incompressible file: its original chunks should come
  // from the base by reference, only the tail travels.
  util::Bytes grown = base.find("/big")->content;
  util::Bytes tail = synthetic_file_content(20'000, 0.0, 4);
  grown.insert(grown.end(), tail.begin(), tail.end());
  target.put("/big", grown);

  VmOverlay overlay = create_overlay(base, target);
  EXPECT_GT(overlay.stats.reused_chunks, 90u);
  EXPECT_LT(overlay.payload.size(), 40'000u);
  VmImage rebuilt = synthesize(base, overlay);
  EXPECT_EQ(rebuilt.digest(), target.digest());
}

TEST(Overlay, ModelWeightsAreIncompressible) {
  // DNN weights (random floats) should pass through ~1:1 while system
  // files shrink — the effect behind Table 1's overlay arithmetic.
  VmImage base = make_base_image(1);
  SystemBundleSizes sizes;
  sizes.browser_bytes = 600'000;
  sizes.libraries_bytes = 600'000;
  sizes.server_program_bytes = 30'000;
  std::vector<std::pair<std::string, util::Bytes>> no_model;
  std::vector<std::pair<std::string, util::Bytes>> with_model = {
      {"m.weights", synthetic_file_content(500'000, 0.0, 77)}};
  VmOverlay system_only = create_overlay(base, make_customized_image(
                                                    base, sizes, no_model));
  VmOverlay with = create_overlay(base,
                                  make_customized_image(base, sizes,
                                                        with_model));
  std::uint64_t model_cost =
      with.payload.size() - system_only.payload.size();
  // The model should cost nearly its raw size (within 5%).
  EXPECT_GT(model_cost, 475'000u);
  EXPECT_LT(model_cost, 525'000u);
  // System files should compress meaningfully (< 60% of raw).
  EXPECT_LT(system_only.payload.size(), 1'230'000u * 6 / 10);
}

TEST(Overlay, CorruptPayloadThrows) {
  VmImage base = make_base_image(1);
  VmImage target = base;
  target.put("/f", bytes_of("data data data data data data"));
  VmOverlay overlay = create_overlay(base, target);
  overlay.payload[overlay.payload.size() / 2] ^= 0xff;
  EXPECT_THROW(synthesize(base, overlay), util::DecodeError);
}

TEST(Overlay, SynthesisComputeTimeScalesWithBytes) {
  OverlayStats small{.uncompressed_bytes = 1'000'000,
                     .compressed_bytes = 500'000};
  OverlayStats big{.uncompressed_bytes = 100'000'000,
                   .compressed_bytes = 50'000'000};
  EXPECT_LT(synthesis_compute_seconds(small),
            synthesis_compute_seconds(big));
  EXPECT_NEAR(synthesis_compute_seconds(big) /
                  synthesis_compute_seconds(small),
              100.0, 1e-6);
}

}  // namespace
}  // namespace offload::vmsynth
