// Unit tests for the MicroJS interpreter: expressions, statements, scoping,
// closures, built-ins, DOM, and the event loop.
#include "src/jsvm/interpreter.h"

#include <gtest/gtest.h>

#include "src/jsvm/lexer.h"

namespace offload::jsvm {
namespace {

double eval_number(const std::string& source) {
  Interpreter interp;
  Value v = interp.eval_program(source);
  return to_number(v);
}

std::string eval_string(const std::string& source) {
  Interpreter interp;
  Value v = interp.eval_program(source);
  return to_display_string(v);
}

TEST(InterpreterExpr, Arithmetic) {
  EXPECT_EQ(eval_number("1 + 2 * 3;"), 7);
  EXPECT_EQ(eval_number("(1 + 2) * 3;"), 9);
  EXPECT_EQ(eval_number("10 / 4;"), 2.5);
  EXPECT_EQ(eval_number("10 % 3;"), 1);
  EXPECT_EQ(eval_number("-3 + 1;"), -2);
  EXPECT_EQ(eval_number("2 * -3;"), -6);
}

TEST(InterpreterExpr, Comparisons) {
  EXPECT_EQ(eval_string("1 < 2;"), "true");
  EXPECT_EQ(eval_string("2 <= 2;"), "true");
  EXPECT_EQ(eval_string("3 > 4;"), "false");
  EXPECT_EQ(eval_string("'abc' < 'abd';"), "true");
  EXPECT_EQ(eval_string("1 == 1;"), "true");
  EXPECT_EQ(eval_string("1 != 2;"), "true");
  EXPECT_EQ(eval_string("'a' == 'a';"), "true");
  EXPECT_EQ(eval_string("null == undefined;"), "true");
}

TEST(InterpreterExpr, StringConcat) {
  EXPECT_EQ(eval_string("'a' + 'b';"), "ab");
  EXPECT_EQ(eval_string("'n=' + 42;"), "n=42");
  EXPECT_EQ(eval_string("1.5 + 'x';"), "1.5x");
}

TEST(InterpreterExpr, LogicalShortCircuit) {
  EXPECT_EQ(eval_number("var n = 0; function f() { n = n + 1; return true; } "
                        "false && f(); n;"),
            0);
  EXPECT_EQ(eval_number("var n = 0; function f() { n = n + 1; return true; } "
                        "true || f(); n;"),
            0);
  EXPECT_EQ(eval_string("0 || 'fallback';"), "fallback");
  EXPECT_EQ(eval_string("1 && 'second';"), "second");
}

TEST(InterpreterExpr, Ternary) {
  EXPECT_EQ(eval_string("1 < 2 ? 'yes' : 'no';"), "yes");
  EXPECT_EQ(eval_string("1 > 2 ? 'yes' : 'no';"), "no");
}

TEST(InterpreterExpr, TypeofOperator) {
  EXPECT_EQ(eval_string("typeof 1;"), "number");
  EXPECT_EQ(eval_string("typeof 'a';"), "string");
  EXPECT_EQ(eval_string("typeof true;"), "boolean");
  EXPECT_EQ(eval_string("typeof undefined;"), "undefined");
  EXPECT_EQ(eval_string("typeof {};"), "object");
  EXPECT_EQ(eval_string("typeof function() {};"), "function");
  EXPECT_EQ(eval_string("typeof notDefinedAnywhere;"), "undefined");
}

TEST(InterpreterExpr, UpdateOperators) {
  EXPECT_EQ(eval_number("var i = 5; i++; i;"), 6);
  EXPECT_EQ(eval_number("var i = 5; i++;"), 5);   // postfix yields old
  EXPECT_EQ(eval_number("var i = 5; ++i;"), 6);   // prefix yields new
  EXPECT_EQ(eval_number("var i = 5; i--; i;"), 4);
  EXPECT_EQ(eval_number("var o = {n: 1}; o.n++; o.n;"), 2);
  EXPECT_EQ(eval_number("var a = [1]; a[0]++; a[0];"), 2);
}

TEST(InterpreterExpr, CompoundAssignment) {
  EXPECT_EQ(eval_number("var x = 10; x += 5; x;"), 15);
  EXPECT_EQ(eval_number("var x = 10; x -= 4; x;"), 6);
  EXPECT_EQ(eval_number("var x = 10; x *= 2; x;"), 20);
  EXPECT_EQ(eval_number("var x = 10; x /= 4; x;"), 2.5);
  EXPECT_EQ(eval_string("var s = 'a'; s += 'b'; s;"), "ab");
  EXPECT_EQ(eval_number("var o = {n: 1}; o.n += 9; o.n;"), 10);
}

TEST(InterpreterStmt, WhileLoop) {
  EXPECT_EQ(eval_number("var s = 0; var i = 0; "
                        "while (i < 10) { s += i; i++; } s;"),
            45);
}

TEST(InterpreterStmt, ForLoop) {
  EXPECT_EQ(eval_number("var s = 0; for (var i = 0; i < 5; i++) { s += i; } "
                        "s;"),
            10);
}

TEST(InterpreterStmt, BreakContinue) {
  EXPECT_EQ(eval_number("var s = 0; for (var i = 0; i < 100; i++) { "
                        "if (i == 5) { break; } s += i; } s;"),
            10);
  EXPECT_EQ(eval_number("var s = 0; for (var i = 0; i < 5; i++) { "
                        "if (i % 2 == 0) { continue; } s += i; } s;"),
            4);
}

TEST(InterpreterStmt, NestedLoopBreak) {
  EXPECT_EQ(eval_number("var n = 0; for (var i = 0; i < 3; i++) { "
                        "for (var j = 0; j < 10; j++) { if (j == 2) { break; } "
                        "n++; } } n;"),
            6);
}

TEST(InterpreterStmt, BlockScoping) {
  // MicroJS `var` is block-scoped (documented deviation).
  Interpreter interp;
  interp.eval_program("var x = 1; { var x = 2; } var y = x;");
  EXPECT_EQ(to_number(*interp.globals()->find("y")), 1);
}

TEST(InterpreterFunc, BasicCallAndReturn) {
  EXPECT_EQ(eval_number("function add(a, b) { return a + b; } add(2, 3);"), 5);
  EXPECT_EQ(eval_string("function f() {} f();"), "undefined");
  EXPECT_EQ(eval_string("function f(a) { return a; } f();"), "undefined");
}

TEST(InterpreterFunc, Recursion) {
  EXPECT_EQ(eval_number("function fib(n) { if (n < 2) { return n; } "
                        "return fib(n - 1) + fib(n - 2); } fib(12);"),
            144);
}

TEST(InterpreterFunc, RecursionDepthLimit) {
  Interpreter interp;
  EXPECT_THROW(
      interp.eval_program("function f() { return f(); } f();"),
      JsError);
}

TEST(InterpreterFunc, ClosureCounter) {
  EXPECT_EQ(eval_number(
                "function makeCounter() { var n = 0; "
                "return function() { n = n + 1; return n; }; } "
                "var c = makeCounter(); c(); c(); c();"),
            3);
}

TEST(InterpreterFunc, ClosuresShareEnvironment) {
  EXPECT_EQ(eval_number(
                "function make() { var n = 0; "
                "return { inc: function() { n = n + 1; }, "
                "get: function() { return n; } }; } "
                "var p = make(); p.inc(); p.inc(); p.get();"),
            2);
}

TEST(InterpreterFunc, FunctionExpressionValue) {
  EXPECT_EQ(eval_number("var f = function(x) { return x * 2; }; f(21);"), 42);
}

TEST(InterpreterFunc, ThisInMethodCall) {
  EXPECT_EQ(eval_number(
                "var obj = {n: 41, bump: function() { return this.n + 1; }}; "
                "obj.bump();"),
            42);
}

TEST(InterpreterArray, LiteralAndIndex) {
  EXPECT_EQ(eval_number("var a = [10, 20, 30]; a[1];"), 20);
  EXPECT_EQ(eval_number("var a = [1, 2]; a.length;"), 2);
  EXPECT_EQ(eval_number("var a = []; a[0] = 7; a[0];"), 7);  // grow by one
}

TEST(InterpreterArray, OutOfRangeRead) {
  Interpreter interp;
  EXPECT_THROW(interp.eval_program("var a = [1]; a[5];"), JsError);
}

TEST(InterpreterArray, Methods) {
  EXPECT_EQ(eval_number("var a = [1]; a.push(2, 3); a.length;"), 3);
  EXPECT_EQ(eval_number("var a = [1, 2, 3]; a.pop();"), 3);
  EXPECT_EQ(eval_number("var a = [5, 6, 7]; a.indexOf(6);"), 1);
  EXPECT_EQ(eval_number("var a = [5, 6]; a.indexOf(9);"), -1);
  EXPECT_EQ(eval_string("[1, 2, 3].join('-');"), "1-2-3");
  EXPECT_EQ(eval_string("[1, 2, 3, 4].slice(1, 3).join(',');"), "2,3");
  EXPECT_EQ(eval_string("[1, 2, 3, 4].slice(-2).join(',');"), "3,4");
}

TEST(InterpreterObject, NestedAndKeys) {
  EXPECT_EQ(eval_number("var o = {a: {b: {c: 9}}}; o.a.b.c;"), 9);
  EXPECT_EQ(eval_number("var o = {'str key': 4}; o['str key'];"), 4);
  EXPECT_EQ(eval_string("var o = {}; o.missing;"), "undefined");
}

TEST(InterpreterString, Methods) {
  EXPECT_EQ(eval_number("'hello'.length;"), 5);
  EXPECT_EQ(eval_string("'hello'.charAt(1);"), "e");
  EXPECT_EQ(eval_number("'hello'.indexOf('llo');"), 2);
  EXPECT_EQ(eval_string("'hello'.slice(1, 3);"), "el");
  EXPECT_EQ(eval_string("'a,b,c'.split(',').join('|');"), "a|b|c");
  EXPECT_EQ(eval_string("'aBc'.toUpperCase();"), "ABC");
  EXPECT_EQ(eval_string("'aBc'.toLowerCase();"), "abc");
  EXPECT_EQ(eval_string("'abc'[1];"), "b");
}

TEST(InterpreterBuiltin, Math) {
  EXPECT_EQ(eval_number("Math.floor(2.7);"), 2);
  EXPECT_EQ(eval_number("Math.ceil(2.1);"), 3);
  EXPECT_EQ(eval_number("Math.round(2.5);"), 3);
  EXPECT_EQ(eval_number("Math.abs(-4);"), 4);
  EXPECT_EQ(eval_number("Math.sqrt(81);"), 9);
  EXPECT_EQ(eval_number("Math.max(1, 9, 4);"), 9);
  EXPECT_EQ(eval_number("Math.min(3, -2, 8);"), -2);
  EXPECT_EQ(eval_number("Math.pow(2, 10);"), 1024);
}

TEST(InterpreterBuiltin, MathRandomDeterministic) {
  Interpreter a;
  Interpreter b;
  Value va = a.eval_program("Math.random();");
  Value vb = b.eval_program("Math.random();");
  EXPECT_EQ(to_number(va), to_number(vb));
  double r = to_number(va);
  EXPECT_GE(r, 0.0);
  EXPECT_LT(r, 1.0);
}

TEST(InterpreterBuiltin, ConsoleCapture) {
  Interpreter interp;
  interp.eval_program("console.log('hello', 1 + 1);");
  ASSERT_EQ(interp.console_output().size(), 1u);
  EXPECT_EQ(interp.console_output()[0], "hello 2");
}

TEST(InterpreterBuiltin, Float32Array) {
  EXPECT_EQ(eval_number("var t = Float32Array(4); t.length;"), 4);
  EXPECT_EQ(eval_number("var t = Float32Array(4); t[2];"), 0);
  EXPECT_EQ(eval_number("var t = Float32Array([1.5, 2.5]); t[1];"), 2.5);
  EXPECT_EQ(eval_number("var t = Float32Array(2); t[0] = 3.25; t[0];"), 3.25);
}

TEST(InterpreterDom, CreateAppendFind) {
  Interpreter interp;
  interp.eval_program(
      "var div = document.createElement('div'); div.id = 'box'; "
      "document.body.appendChild(div); "
      "var found = document.getElementById('box'); "
      "found.textContent = 'hi';");
  DomNodePtr node = interp.document().get_element_by_id("box");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->text, "hi");
  EXPECT_EQ(node->tag, "div");
}

TEST(InterpreterDom, Attributes) {
  Interpreter interp;
  interp.eval_program(
      "var d = document.createElement('img'); "
      "d.setAttribute('src', 'cat.png'); "
      "var v = d.getAttribute('src'); var miss = d.getAttribute('alt');");
  EXPECT_EQ(to_display_string(*interp.globals()->find("v")), "cat.png");
  EXPECT_TRUE(is_null(*interp.globals()->find("miss")));
}

TEST(InterpreterDom, EventDispatchIsAsync) {
  Interpreter interp;
  interp.eval_program(
      "var log = []; "
      "var btn = document.createElement('button'); "
      "btn.addEventListener('click', function(e) { log.push(e.type); }); "
      "btn.dispatchEvent('click'); "
      "log.push('sync');");
  // Handler has not run yet.
  auto log = std::get<ArrayPtr>(*interp.globals()->find("log"));
  ASSERT_EQ(log->elements.size(), 1u);
  EXPECT_EQ(to_display_string(log->elements[0]), "sync");
  EXPECT_EQ(interp.run_events(), 1u);
  ASSERT_EQ(log->elements.size(), 2u);
  EXPECT_EQ(to_display_string(log->elements[1]), "click");
}

TEST(InterpreterDom, EventObjectFields) {
  Interpreter interp;
  interp.eval_program(
      "var seen = {}; "
      "var btn = document.createElement('button'); btn.id = 'b1'; "
      "btn.addEventListener('go', function(e) { "
      "  seen.type = e.type; seen.id = e.target.id; seen.detail = e.detail; "
      "  seen.self = this.id; }); "
      "btn.dispatchEvent('go', 42);");
  interp.run_events();
  auto seen = std::get<ObjectPtr>(*interp.globals()->find("seen"));
  EXPECT_EQ(to_display_string(seen->get("type")), "go");
  EXPECT_EQ(to_display_string(seen->get("id")), "b1");
  EXPECT_EQ(to_number(seen->get("detail")), 42);
  EXPECT_EQ(to_display_string(seen->get("self")), "b1");
}

TEST(InterpreterDom, MultipleListenersRunInOrder) {
  Interpreter interp;
  interp.eval_program(
      "var log = []; var b = document.createElement('b'); "
      "b.addEventListener('x', function() { log.push(1); }); "
      "b.addEventListener('x', function() { log.push(2); }); "
      "b.addEventListener('y', function() { log.push(3); }); "
      "b.dispatchEvent('x');");
  interp.run_events();
  auto log = std::get<ArrayPtr>(*interp.globals()->find("log"));
  ASSERT_EQ(log->elements.size(), 2u);
  EXPECT_EQ(to_number(log->elements[0]), 1);
  EXPECT_EQ(to_number(log->elements[1]), 2);
}

TEST(InterpreterDom, RemoveEventListener) {
  Interpreter interp;
  interp.eval_program(
      "var n = 0; var f = function() { n++; }; "
      "var b = document.createElement('b'); "
      "b.addEventListener('x', f); b.removeEventListener('x', f); "
      "b.dispatchEvent('x');");
  interp.run_events();
  EXPECT_EQ(to_number(*interp.globals()->find("n")), 0);
}

TEST(InterpreterDom, ChainedEvents) {
  // front() dispatches a custom event that triggers rear() — the paper's
  // partial-inference control flow (Fig. 5).
  Interpreter interp;
  interp.eval_program(
      "var phase = 'init'; "
      "var btn = document.createElement('button'); "
      "btn.addEventListener('click', function() { "
      "  phase = 'front'; btn.dispatchEvent('front_complete'); }); "
      "btn.addEventListener('front_complete', function() { "
      "  phase = 'rear'; }); "
      "btn.dispatchEvent('click');");
  EXPECT_EQ(interp.run_events(), 2u);
  EXPECT_EQ(to_display_string(*interp.globals()->find("phase")), "rear");
}

TEST(InterpreterDom, OffloadHookStopsBeforeHandler) {
  Interpreter interp;
  interp.eval_program(
      "var ran = false; "
      "var btn = document.createElement('button'); "
      "btn.addEventListener('infer', function() { ran = true; }); "
      "btn.dispatchEvent('infer');");
  interp.offload_hook = [](const PendingEvent& ev) {
    return ev.type == "infer";
  };
  EXPECT_EQ(interp.run_events(), 0u);
  EXPECT_EQ(to_display_string(*interp.globals()->find("ran")), "false");
  auto pending = interp.take_pending_offload();
  ASSERT_TRUE(pending.has_value());
  EXPECT_EQ(pending->type, "infer");
  // The event is still at the queue front; clearing the hook lets it run.
  interp.offload_hook = nullptr;
  EXPECT_EQ(interp.run_events(), 1u);
  EXPECT_EQ(to_display_string(*interp.globals()->find("ran")), "true");
}

TEST(InterpreterError, UndefinedVariable) {
  Interpreter interp;
  EXPECT_THROW(interp.eval_program("nope + 1;"), JsError);
}

TEST(InterpreterError, CallingNonFunction) {
  Interpreter interp;
  EXPECT_THROW(interp.eval_program("var x = 3; x();"), JsError);
}

TEST(InterpreterError, ImplicitGlobalOnlyForPlainAssign) {
  Interpreter interp;
  interp.eval_program("newGlobal = 9;");
  EXPECT_EQ(to_number(*interp.globals()->find("newGlobal")), 9);
  EXPECT_THROW(interp.eval_program("neverSeen += 1;"), JsError);
}

TEST(InterpreterError, ParseErrors) {
  Interpreter interp;
  EXPECT_THROW(interp.eval_program("var = 3;"), ParseError);
  EXPECT_THROW(interp.eval_program("if (1 {"), ParseError);
  EXPECT_THROW(interp.eval_program("var x = 'unterminated;"), ParseError);
  EXPECT_THROW(interp.eval_program("var x = 1 + ;"), ParseError);
  EXPECT_THROW(interp.eval_program("1 & 2;"), ParseError);
}

TEST(InterpreterError, NumberCoercionIsStrict) {
  Interpreter interp;
  EXPECT_THROW(interp.eval_program("'a' - 1;"), JsError);
  EXPECT_THROW(interp.eval_program("({}) * 2;"), JsError);
}

TEST(InterpreterMisc, Comments) {
  EXPECT_EQ(eval_number("// line comment\nvar x = 1; /* block */ x + 1;"), 2);
}

TEST(InterpreterMisc, StringEscapes) {
  EXPECT_EQ(eval_string("'a\\nb';"), "a\nb");
  EXPECT_EQ(eval_string("\"q\\\"q\";"), "q\"q");
  EXPECT_EQ(eval_string("'tab\\t.';"), "tab\t.");
  EXPECT_EQ(eval_string("'\\x41';"), "A");
}

TEST(InterpreterMisc, StatsCount) {
  Interpreter interp;
  interp.eval_program("function f() { return 1; } f(); f();");
  EXPECT_GE(interp.stats().calls, 2u);
  EXPECT_GE(interp.stats().statements, 3u);
}

}  // namespace
}  // namespace offload::jsvm
