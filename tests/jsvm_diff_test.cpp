// Tests for realm fingerprinting and differential snapshots (the paper's
// Section VI future work): ship only the state that changed since the last
// offload, applying it to the session realm the server kept.
#include "src/jsvm/snapshot_diff.h"

#include <gtest/gtest.h>

#include "src/jsvm/snapshot.h"

namespace offload::jsvm {
namespace {

/// Build two identical realms: the "client" (live) and a "server session"
/// replica created by restoring the client's full snapshot.
struct Pair {
  Interpreter client;
  std::unique_ptr<Interpreter> server = std::make_unique<Interpreter>();
  RealmFingerprint baseline;

  explicit Pair(const std::string& setup) {
    client.eval_program(setup);
    client.run_events();
    SnapshotResult snap = capture_snapshot(client);
    restore_snapshot(*server, snap.program);
    baseline = fingerprint_realm(client);
    // Sanity: the replica fingerprints identically.
    EXPECT_EQ(fingerprint_realm(*server).version, baseline.version);
  }

  /// Diff the client against the baseline and apply to the server.
  DiffSnapshotResult sync() {
    DiffSnapshotResult diff = capture_snapshot_diff(client, baseline);
    if (diff.full_fallback) {
      // A fallback is a full snapshot for a fresh realm; emulate the
      // server dropping its session.
      server = std::make_unique<Interpreter>();
      restore_snapshot(*server, diff.program);
    } else {
      server->eval_program(diff.program, "diff");
    }
    return diff;
  }

  void expect_in_sync() {
    EXPECT_EQ(fingerprint_realm(client).version,
              fingerprint_realm(*server).version);
  }
};

TEST(Fingerprint, DeterministicAcrossRealms) {
  const std::string src =
      "var a = {x: [1, 2, 3]}; var s = 'txt'; "
      "function f() { return a; } "
      "var d = document.createElement('div'); d.textContent = 'hello'; "
      "document.body.appendChild(d);";
  Interpreter i1;
  i1.eval_program(src);
  Interpreter i2;
  i2.eval_program(src);
  RealmFingerprint f1 = fingerprint_realm(i1);
  RealmFingerprint f2 = fingerprint_realm(i2);
  EXPECT_EQ(f1.version, f2.version);
  EXPECT_EQ(f1.globals, f2.globals);
  EXPECT_EQ(f1.dom_structure, f2.dom_structure);
}

TEST(Fingerprint, SensitiveToGlobalMutation) {
  Interpreter interp;
  interp.eval_program("var a = {x: 1};");
  std::uint64_t before = fingerprint_realm(interp).version;
  interp.eval_program("a.x = 2;");
  EXPECT_NE(fingerprint_realm(interp).version, before);
}

TEST(Fingerprint, DeepMutationChangesRootHash) {
  Interpreter interp;
  interp.eval_program("var a = {inner: {deep: [1, 2]}};");
  RealmFingerprint before = fingerprint_realm(interp);
  interp.eval_program("a.inner.deep[1] = 99;");
  RealmFingerprint after = fingerprint_realm(interp);
  EXPECT_NE(*before.find("a"), *after.find("a"));
}

TEST(Fingerprint, DomTextChangesContentNotStructure) {
  Interpreter interp;
  interp.eval_program(
      "var d = document.createElement('div'); d.textContent = 'one'; "
      "document.body.appendChild(d);");
  RealmFingerprint before = fingerprint_realm(interp);
  interp.eval_program("d.textContent = 'two';");
  RealmFingerprint after = fingerprint_realm(interp);
  EXPECT_EQ(before.dom_structure, after.dom_structure);
  EXPECT_NE(before.dom_content, after.dom_content);
}

TEST(Fingerprint, NewDomNodeChangesStructure) {
  Interpreter interp;
  interp.eval_program("var d = document.createElement('div'); "
                      "document.body.appendChild(d);");
  RealmFingerprint before = fingerprint_realm(interp);
  interp.eval_program(
      "document.body.appendChild(document.createElement('span'));");
  EXPECT_NE(fingerprint_realm(interp).dom_structure, before.dom_structure);
}

TEST(Fingerprint, GlobalSwitchingDomNodesDetected) {
  Interpreter interp;
  interp.eval_program(
      "var a = document.createElement('div'); "
      "var b = document.createElement('div'); "
      "document.body.appendChild(a); document.body.appendChild(b); "
      "var current = a;");
  RealmFingerprint before = fingerprint_realm(interp);
  interp.eval_program("current = b;");
  RealmFingerprint after = fingerprint_realm(interp);
  EXPECT_NE(*before.find("current"), *after.find("current"));
}

TEST(Fingerprint, HashValueCycleSafe) {
  Interpreter interp;
  interp.eval_program("var a = {}; a.self = a;");
  Value v = *interp.globals()->find("a");
  std::uint64_t h1 = hash_value(v);
  interp.eval_program("a.extra = 1;");
  EXPECT_NE(hash_value(v), h1);
}

TEST(DiffSnapshot, OnlyChangedGlobalShips) {
  Pair pair(
      "var big = Float32Array(5000); "
      "for (var i = 0; i < 5000; i++) { big[i] = i * 0.5; } "
      "var small = 1;");
  pair.client.eval_program("small = 2;");
  DiffSnapshotResult diff = pair.sync();
  EXPECT_FALSE(diff.full_fallback);
  // The 5000-element array must NOT be in the diff.
  EXPECT_EQ(diff.stats.typed_arrays, 0u);
  EXPECT_LT(diff.stats.total_bytes, 200u);
  pair.expect_in_sync();
  EXPECT_EQ(pair.server->eval_program("small;"), Value(2.0));
  EXPECT_EQ(pair.server->eval_program("big[4999];"), Value(2499.5));
}

TEST(DiffSnapshot, MuchSmallerThanFullForLocalizedChange) {
  Pair pair(
      "var state = {history: []}; "
      "for (var i = 0; i < 500; i++) { state.history.push({step: i}); } "
      "var cursor = 0;");
  pair.client.eval_program("cursor = 77;");
  SnapshotResult full = capture_snapshot(pair.client);
  DiffSnapshotResult diff = capture_snapshot_diff(pair.client, pair.baseline);
  EXPECT_FALSE(diff.full_fallback);
  EXPECT_LT(diff.stats.total_bytes * 20, full.stats.total_bytes);
  pair.sync();
  pair.expect_in_sync();
}

TEST(DiffSnapshot, RemovedGlobalBecomesUndefined) {
  Pair pair("var temp = {x: 1}; var keep = 2;");
  // MicroJS has no delete; model removal by rebinding to undefined.
  pair.client.eval_program("temp = undefined;");
  pair.sync();
  EXPECT_TRUE(is_undefined(pair.server->eval_program("temp;")));
  EXPECT_EQ(pair.server->eval_program("keep;"), Value(2.0));
}

TEST(DiffSnapshot, NewGlobalWithFreshHeap) {
  Pair pair("var a = 1;");
  pair.client.eval_program(
      "var feature = Float32Array([1.5, 2.5, 3.5]); var label = 'cat';");
  DiffSnapshotResult diff = pair.sync();
  EXPECT_FALSE(diff.full_fallback);
  EXPECT_EQ(diff.stats.typed_arrays, 1u);
  pair.expect_in_sync();
  EXPECT_EQ(pair.server->eval_program("feature[2];"), Value(3.5));
}

TEST(DiffSnapshot, DomContentDiffAppliesInPlace) {
  Pair pair(
      "var result = document.createElement('div'); result.id = 'result'; "
      "document.body.appendChild(result); result.textContent = 'waiting';");
  pair.client.eval_program("result.textContent = 'label 42';");
  DiffSnapshotResult diff = pair.sync();
  EXPECT_FALSE(diff.full_fallback);
  EXPECT_NE(diff.program.find("__domByIndex"), std::string::npos);
  DomNodePtr node = pair.server->document().get_element_by_id("result");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->text, "label 42");
  // Identity on the server preserved: the global still points at the same
  // node the session realm already had.
  EXPECT_EQ(std::get<DomNodePtr>(pair.server->eval_program("result;")), node);
  pair.expect_in_sync();
}

TEST(DiffSnapshot, DomStructureChangeFallsBackToFull) {
  Pair pair("var d = document.createElement('div'); "
            "document.body.appendChild(d);");
  pair.client.eval_program(
      "document.body.appendChild(document.createElement('span'));");
  DiffSnapshotResult diff = capture_snapshot_diff(pair.client, pair.baseline);
  EXPECT_TRUE(diff.full_fallback);
  pair.sync();
  pair.expect_in_sync();
}

TEST(DiffSnapshot, SharedHeapWithUnchangedGlobalFallsBack) {
  Pair pair("var shared = {n: 1}; var untouched = {ref: shared};");
  // New global referencing the shared object: rebuilding it in a diff
  // would split identity with `untouched.ref` on the server.
  pair.client.eval_program("var alias = shared;");
  DiffSnapshotResult diff = capture_snapshot_diff(pair.client, pair.baseline);
  EXPECT_TRUE(diff.full_fallback);
  pair.sync();
  pair.expect_in_sync();
  // Identity intact after the full fallback.
  pair.server->eval_program("alias.n = 9;");
  EXPECT_EQ(pair.server->eval_program("untouched.ref.n;"), Value(9.0));
}

TEST(DiffSnapshot, PendingEventRidesTheDiff) {
  Pair pair(
      "var hits = 0; "
      "var btn = document.createElement('button'); btn.id = 'b'; "
      "document.body.appendChild(btn); "
      "btn.addEventListener('go', function(e) { hits = hits + e.detail; });");
  pair.client.eval_program("btn.dispatchEvent('go', 5);");
  DiffSnapshotResult diff = capture_snapshot_diff(pair.client, pair.baseline);
  EXPECT_FALSE(diff.full_fallback);
  EXPECT_EQ(diff.stats.events, 1u);
  pair.server->eval_program(diff.program, "diff");
  pair.server->run_events();
  EXPECT_EQ(pair.server->eval_program("hits;"), Value(5.0));
}

TEST(DiffSnapshot, ClosureStateDiff) {
  Pair pair(
      "function makeCounter() { var n = 0; "
      "return function() { n = n + 1; return n; }; } "
      "var counter = makeCounter();");
  // Advance the counter on the client: its captured env changed, so the
  // `counter` global's hash changes and the closure re-ships.
  pair.client.eval_program("counter(); counter();");
  DiffSnapshotResult diff = pair.sync();
  EXPECT_FALSE(diff.full_fallback);
  EXPECT_EQ(pair.server->eval_program("counter();"), Value(3.0));
}

TEST(DiffSnapshot, SecondRoundUsesNewBaseline) {
  Pair pair("var x = 1; var log = [];");
  pair.client.eval_program("x = 2; log.push('a');");
  pair.sync();
  pair.expect_in_sync();
  // Re-baseline both sides at the new common state, then diff again.
  pair.baseline = fingerprint_realm(pair.client);
  pair.client.eval_program("x = 3;");
  DiffSnapshotResult diff = pair.sync();
  EXPECT_FALSE(diff.full_fallback);
  EXPECT_LT(diff.stats.total_bytes, 120u);
  EXPECT_EQ(pair.server->eval_program("x;"), Value(3.0));
  EXPECT_EQ(pair.server->eval_program("log.length;"), Value(1.0));
}

TEST(DiffSnapshot, NoChangesProducesNearEmptyDiff) {
  Pair pair("var a = {big: Float32Array(1000)};");
  DiffSnapshotResult diff = pair.sync();
  EXPECT_FALSE(diff.full_fallback);
  EXPECT_EQ(diff.stats.globals, 0u);
  EXPECT_LT(diff.stats.total_bytes, 40u);
  pair.expect_in_sync();
}

}  // namespace
}  // namespace offload::jsvm
