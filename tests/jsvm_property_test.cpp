// Property-based tests for the snapshot engine: generate randomized heap
// graphs (with sharing, cycles, typed arrays, closures, DOM references),
// snapshot them, restore into a fresh realm, and verify deep structural
// equality — including identity relations (shared references stay shared,
// distinct ones stay distinct).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/jsvm/lexer.h"
#include "src/jsvm/snapshot.h"
#include "src/jsvm/snapshot_diff.h"
#include "src/util/rng.h"

namespace offload::jsvm {
namespace {

// ----------------------------------------------------------- random graphs

/// Builds a random value graph directly in a realm. Kept small per case;
/// the sweep runs many seeds.
class GraphGenerator {
 public:
  GraphGenerator(Interpreter& interp, std::uint64_t seed)
      : interp_(interp), rng_(seed, 0x67656e65726174ULL) {}

  void build(int num_globals) {
    // A pool of heap values to create sharing and cycles across globals.
    const int pool_size = 3 + static_cast<int>(rng_.next_below(6));
    for (int i = 0; i < pool_size; ++i) {
      pool_.push_back(make_value(2));
    }
    // Retro-link random pool objects to each other (cycles).
    for (int i = 0; i < pool_size; ++i) {
      if (auto* obj = std::get_if<ObjectPtr>(&pool_[static_cast<std::size_t>(
              i)])) {
        if (rng_.chance(0.5)) {
          (*obj)->set("link",
                      pool_[rng_.next_below(static_cast<std::uint32_t>(
                          pool_.size()))]);
        }
      }
    }
    for (int g = 0; g < num_globals; ++g) {
      interp_.globals()->declare("g" + std::to_string(g), make_value(3));
    }
  }

 private:
  Value make_value(int depth) {
    // Reuse pool values often to exercise shared references.
    if (depth < 3 && rng_.chance(0.3) && !pool_.empty()) {
      return pool_[rng_.next_below(static_cast<std::uint32_t>(pool_.size()))];
    }
    switch (depth <= 0 ? rng_.next_below(6) : rng_.next_below(9)) {
      case 0:
        return Undefined{};
      case 1:
        return Null{};
      case 2:
        return rng_.chance(0.5);
      case 3:
        // Mix integers, fractions, negatives, extremes.
        switch (rng_.next_below(4)) {
          case 0: return static_cast<double>(rng_.next_u32());
          case 1: return rng_.uniform(-1e6, 1e6);
          case 2: return rng_.uniform(-1e-6, 1e-6);
          default: return -0.0;
        }
      case 4: {
        std::string s;
        std::size_t len = rng_.next_below(12);
        for (std::size_t i = 0; i < len; ++i) {
          // Include quotes, backslashes, control chars.
          static const char alphabet[] =
              "ab\"\\\n\t\rz{}[]$_0; \x01\x1f";
          s.push_back(alphabet[rng_.next_below(sizeof(alphabet) - 1)]);
        }
        return s;
      }
      case 5: {
        auto ta = std::make_shared<TypedArray>();
        std::size_t len = rng_.next_below(8);
        for (std::size_t i = 0; i < len; ++i) {
          ta->data.push_back(static_cast<float>(rng_.uniform(-100, 100)));
        }
        return ta;
      }
      case 6: {
        auto obj = std::make_shared<Object>();
        std::size_t props = rng_.next_below(4);
        for (std::size_t i = 0; i < props; ++i) {
          obj->set("p" + std::to_string(i), make_value(depth - 1));
        }
        return obj;
      }
      case 7: {
        auto arr = std::make_shared<ArrayObj>();
        std::size_t n = rng_.next_below(5);
        for (std::size_t i = 0; i < n; ++i) {
          arr->elements.push_back(make_value(depth - 1));
        }
        return arr;
      }
      default: {
        // A closure over fresh state.
        int seed_n = static_cast<int>(rng_.next_below(100));
        std::string name = "mk" + std::to_string(counter_++);
        interp_.eval_program(
            "function " + name + "() { var n = " + std::to_string(seed_n) +
            "; return function(d) { n = n + d; return n; }; }");
        return interp_.eval_program(name + "();");
      }
    }
  }

  Interpreter& interp_;
  util::Pcg32 rng_;
  std::vector<Value> pool_;
  int counter_ = 0;
};

// ------------------------------------------------------------ deep compare

/// Structural equality with identity tracking: value graphs must be
/// isomorphic (same shapes AND same sharing).
class DeepComparer {
 public:
  bool equal(const Value& a, const Value& b) {
    if (a.index() != b.index()) return false;
    if (const auto* oa = std::get_if<ObjectPtr>(&a)) {
      const auto& ob = std::get<ObjectPtr>(b);
      if (!match_identity(oa->get(), ob.get())) return false;
      if (visited_.count(oa->get())) return true;
      visited_.insert(oa->get());
      if ((*oa)->properties.size() != ob->properties.size()) return false;
      for (std::size_t i = 0; i < (*oa)->properties.size(); ++i) {
        if ((*oa)->properties[i].first != ob->properties[i].first) {
          return false;
        }
        if (!equal((*oa)->properties[i].second, ob->properties[i].second)) {
          return false;
        }
      }
      return true;
    }
    if (const auto* aa = std::get_if<ArrayPtr>(&a)) {
      const auto& ab = std::get<ArrayPtr>(b);
      if (!match_identity(aa->get(), ab.get())) return false;
      if (visited_.count(aa->get())) return true;
      visited_.insert(aa->get());
      if ((*aa)->elements.size() != ab->elements.size()) return false;
      for (std::size_t i = 0; i < (*aa)->elements.size(); ++i) {
        if (!equal((*aa)->elements[i], ab->elements[i])) return false;
      }
      return true;
    }
    if (const auto* ta = std::get_if<TypedArrayPtr>(&a)) {
      const auto& tb = std::get<TypedArrayPtr>(b);
      if (!match_identity(ta->get(), tb.get())) return false;
      // Bit-exact float payloads.
      if ((*ta)->data.size() != tb->data.size()) return false;
      for (std::size_t i = 0; i < (*ta)->data.size(); ++i) {
        if (std::bit_cast<std::uint32_t>((*ta)->data[i]) !=
            std::bit_cast<std::uint32_t>(tb->data[i])) {
          return false;
        }
      }
      return true;
    }
    if (const auto* fa = std::get_if<FunctionPtr>(&a)) {
      const auto& fb = std::get<FunctionPtr>(b);
      if (!match_identity(fa->get(), fb.get())) return false;
      return (*fa)->source() == fb->source();
    }
    if (const auto* na = std::get_if<NativeFnPtr>(&a)) {
      return (*na)->registry_name ==
             std::get<NativeFnPtr>(b)->registry_name;
    }
    if (const auto* da = std::get_if<double>(&a)) {
      // NaN-safe bit comparison (snapshots round-trip bits).
      return std::bit_cast<std::uint64_t>(*da) ==
             std::bit_cast<std::uint64_t>(std::get<double>(b));
    }
    return values_equal(a, b);
  }

 private:
  /// Enforce isomorphism: a left node must always map to the same right
  /// node and vice versa.
  bool match_identity(const void* left, const void* right) {
    auto [it, fresh] = left_to_right_.try_emplace(left, right);
    if (!fresh && it->second != right) return false;
    auto [it2, fresh2] = right_to_left_.try_emplace(right, left);
    return fresh2 ? true : it2->second == left;
  }

  std::map<const void*, const void*> left_to_right_;
  std::map<const void*, const void*> right_to_left_;
  std::set<const void*> visited_;
};

bool globals_deep_equal(Interpreter& a, Interpreter& b) {
  DeepComparer cmp;
  const auto& slots_a = a.globals()->slots();
  for (const auto& [name, value] : slots_a) {
    if (a.is_ambient_binding(name, value)) continue;
    Value* vb = b.globals()->find(name);
    if (!vb) {
      ADD_FAILURE() << "global " << name << " missing after restore";
      return false;
    }
    if (!cmp.equal(value, *vb)) {
      ADD_FAILURE() << "global " << name << " differs after restore";
      return false;
    }
  }
  return true;
}

class SnapshotRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotRoundTrip, RandomHeapGraphSurvives) {
  Interpreter a;
  GraphGenerator gen(a, GetParam());
  gen.build(6);
  SnapshotResult snap = capture_snapshot(a);

  Interpreter b;
  restore_snapshot(b, snap.program);
  EXPECT_TRUE(globals_deep_equal(a, b)) << "seed=" << GetParam();

  // Round-trip stability: a second generation preserves it again.
  SnapshotResult snap2 = capture_snapshot(b);
  Interpreter c;
  restore_snapshot(c, snap2.program);
  EXPECT_TRUE(globals_deep_equal(b, c)) << "seed=" << GetParam();
  // And the writer is a fixed point after one hop: same state → same text.
  EXPECT_EQ(capture_snapshot(c).program, snap2.program);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(SnapshotProperty, ClosuresKeepWorkingAcrossGenerations) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Interpreter a;
    GraphGenerator gen(a, seed);
    gen.build(4);
    // Find any function-valued global and advance it on both sides.
    SnapshotResult snap = capture_snapshot(a);
    Interpreter b;
    restore_snapshot(b, snap.program);
    for (const auto& [name, value] : a.globals()->slots()) {
      if (!std::holds_alternative<FunctionPtr>(value)) continue;
      if (a.is_ambient_binding(name, value)) continue;
      // Skip the "mk*" maker declarations: they return fresh closures
      // (reference values that can't compare across realms). The g*
      // globals hold the stateful inner closures, which return numbers.
      if (name.rfind("mk", 0) == 0) continue;
      Value ra = a.eval_program(name + "(7);");
      Value rb = b.eval_program(name + "(7);");
      EXPECT_TRUE(values_equal(ra, rb))
          << "closure " << name << " diverged, seed=" << seed;
    }
  }
}

TEST(SnapshotProperty, ParserRejectsMutatedSnapshotsSafely) {
  // Corrupting snapshot text must raise ParseError/JsError, never crash
  // or silently mis-restore.
  Interpreter a;
  GraphGenerator gen(a, 5);
  gen.build(5);
  SnapshotResult snap = capture_snapshot(a);
  util::Pcg32 rng(1234);
  int threw = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = snap.program;
    // Flip one character to something hostile.
    std::size_t pos = rng.next_below(
        static_cast<std::uint32_t>(mutated.size()));
    static const char junk[] = "\"{}()\\;@#";
    mutated[pos] = junk[rng.next_below(sizeof(junk) - 1)];
    Interpreter b;
    try {
      b.eval_program(mutated, "mutated-snapshot");
    } catch (const ParseError&) {
      ++threw;
    } catch (const JsError&) {
      ++threw;
    }
  }
  // Most single-character mutations must be caught (some flips are
  // semantically harmless, e.g. inside string payloads).
  EXPECT_GT(threw, 10);
}

TEST(SnapshotProperty, SpecialFloatsRoundTrip) {
  Interpreter a;
  a.eval_program(
      "var t = Float32Array(6); t[0] = 0; t[1] = -0.0; "
      "t[2] = 1e38; t[3] = -1e-38; t[4] = 3.4028235e38; t[5] = 1.4e-45;");
  auto ta = std::get<TypedArrayPtr>(*a.globals()->find("t"));
  SnapshotResult snap = capture_snapshot(a);
  Interpreter b;
  restore_snapshot(b, snap.program);
  auto tb = std::get<TypedArrayPtr>(*b.globals()->find("t"));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(ta->data[i]),
              std::bit_cast<std::uint32_t>(tb->data[i]))
        << "slot " << i;
  }
}

TEST(SnapshotProperty, HostileStringsRoundTrip) {
  Interpreter a;
  std::vector<std::string> cases = {
      "", "\"", "\\", "\\\"", "\n\t\r", std::string(1, '\0'),
      "'single'", "__o0", "(function(){})();", "\x01\x02\x1f",
      "ends with backslash\\",
  };
  auto arr = std::make_shared<ArrayObj>();
  for (const auto& s : cases) arr->elements.emplace_back(s);
  a.globals()->declare("strs", arr);
  SnapshotResult snap = capture_snapshot(a);
  Interpreter b;
  restore_snapshot(b, snap.program);
  auto rb = std::get<ArrayPtr>(*b.globals()->find("strs"));
  ASSERT_EQ(rb->elements.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(std::get<std::string>(rb->elements[i]), cases[i]) << i;
  }
}

class DiffProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiffProperty, RandomMutationThenDiffConverges) {
  // Build random state, replicate it, mutate the original randomly, then
  // diff-sync (or full-sync on fallback) and check fingerprints converge.
  Interpreter a;
  GraphGenerator gen(a, GetParam());
  gen.build(5);
  SnapshotResult snap = capture_snapshot(a);
  auto b = std::make_unique<Interpreter>();
  restore_snapshot(*b, snap.program);
  RealmFingerprint baseline = fingerprint_realm(a);

  // Random mutations through the language (so both heaps stay valid).
  util::Pcg32 rng(GetParam() * 977 + 3);
  const char* mutations[] = {
      "g0 = 42;",
      "g1 = {fresh: [1, 2, 3]};",
      "g2 = 'replaced';",
      "newGlobal = Float32Array([9.5]);",
      "g3 = g3;",  // no-op
  };
  int n = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < n; ++i) {
    a.eval_program(mutations[rng.next_below(5)]);
  }

  DiffSnapshotResult diff = capture_snapshot_diff(a, baseline);
  if (diff.full_fallback) {
    b = std::make_unique<Interpreter>();
    restore_snapshot(*b, diff.program);
  } else {
    b->eval_program(diff.program, "diff");
  }
  EXPECT_EQ(fingerprint_realm(a).version, fingerprint_realm(*b).version)
      << "seed=" << GetParam();
  EXPECT_TRUE(globals_deep_equal(a, *b)) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace offload::jsvm
