// Direct coverage for the discrete-event engine: FIFO determinism, cancel
// semantics (including eager closure destruction), run_until edge cases,
// the slab arena, UniqueFunction storage, timing-wheel cascading/overflow,
// and the heap-vs-wheel differential that pins both backends to identical
// firing orders over randomized schedule/cancel workloads.
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/simulation.h"
#include "src/sim/workload.h"
#include "src/util/rng.h"
#include "src/util/unique_function.h"

namespace offload::sim {
namespace {

using offload::util::Pcg32;
using offload::util::UniqueFunction;

class SimulationBackends : public ::testing::TestWithParam<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(Schedulers, SimulationBackends,
                         ::testing::Values(SchedulerKind::kHeap,
                                           SchedulerKind::kWheel),
                         [](const auto& info) {
                           return info.param == SchedulerKind::kHeap
                                      ? "heap"
                                      : "wheel";
                         });

TEST_P(SimulationBackends, FiresInTimestampOrder) {
  Simulation sim(GetParam());
  std::vector<int> order;
  sim.schedule(SimTime::millis(30), [&] { order.push_back(3); });
  sim.schedule(SimTime::millis(10), [&] { order.push_back(1); });
  sim.schedule(SimTime::millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(30));
}

TEST_P(SimulationBackends, FifoTieBreakAtEqualTimestamps) {
  Simulation sim(GetParam());
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.schedule(SimTime::millis(7), [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(SimulationBackends, ZeroDelayDuringCallbackFiresAfterBatch) {
  Simulation sim(GetParam());
  std::vector<int> order;
  sim.schedule(SimTime::millis(1), [&] {
    order.push_back(1);
    sim.schedule(SimTime::zero(), [&] { order.push_back(3); });
  });
  sim.schedule(SimTime::millis(1), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(SimulationBackends, CancelPreventsFiringAndReportsCorrectly) {
  Simulation sim(GetParam());
  int fired = 0;
  EventHandle h = sim.schedule(SimTime::millis(5), [&] { ++fired; });
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // double-cancel
  EXPECT_EQ(sim.pending(), 0u);
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST_P(SimulationBackends, CancelAfterFireReturnsFalse) {
  Simulation sim(GetParam());
  int fired = 0;
  EventHandle h = sim.schedule(SimTime::millis(5), [&] { ++fired; });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(h));
}

TEST_P(SimulationBackends, CancelFromInsideOwnCallbackIsFalse) {
  Simulation sim(GetParam());
  EventHandle h;
  bool cancel_result = true;
  h = sim.schedule(SimTime::millis(1),
                   [&] { cancel_result = sim.cancel(h); });
  sim.run();
  EXPECT_FALSE(cancel_result);
}

TEST_P(SimulationBackends, InvalidHandleCancelIsFalse) {
  Simulation sim(GetParam());
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST_P(SimulationBackends, CancelReleasesCapturedStatePromptly) {
  // The whole point of eager closure destruction: captured shared state
  // (channels, snapshots) dies at cancel time, not when the entry is
  // lazily popped much later.
  Simulation sim(GetParam());
  auto token = std::make_shared<int>(7);
  EventHandle h = sim.schedule(SimTime::millis(5), [token] { (void)*token; });
  sim.schedule(SimTime::seconds(100.0), [] {});  // queue stays non-empty
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_EQ(token.use_count(), 1) << "closure must be destroyed at cancel";
  sim.run();
}

TEST_P(SimulationBackends, CancelAfterRunUntilLookaheadReleasesPromptly) {
  // run_until may have already staged the next event internally (the
  // wheel drains slots into a due batch); cancelling it afterwards must
  // still release captures immediately and prevent firing.
  Simulation sim(GetParam());
  auto token = std::make_shared<int>(7);
  int fired = 0;
  EventHandle h =
      sim.schedule(SimTime::millis(10), [token, &fired] { ++fired; });
  EXPECT_EQ(sim.run_until(SimTime::millis(1)), 0u);
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_EQ(sim.pending(), 0u);
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST_P(SimulationBackends, RunUntilFiresEventsAtExactlyTheDeadline) {
  Simulation sim(GetParam());
  int fired = 0;
  sim.schedule(SimTime::millis(5), [&] { ++fired; });
  sim.schedule(SimTime::millis(10), [&] { ++fired; });
  sim.schedule(SimTime::millis(15), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(SimTime::millis(10)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::millis(10));
  EXPECT_EQ(sim.pending(), 1u);
}

TEST_P(SimulationBackends, RunUntilAdvancesNowToDeadlineWhenIdle) {
  Simulation sim(GetParam());
  EXPECT_EQ(sim.run_until(SimTime::seconds(3.0)), 0u);
  EXPECT_EQ(sim.now(), SimTime::seconds(3.0));
  // Scheduling relative to the advanced clock works.
  int fired = 0;
  sim.schedule(SimTime::millis(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(3.0) + SimTime::millis(1));
}

TEST_P(SimulationBackends, ScheduleEarlierThanStagedEventAfterRunUntil) {
  // After a run_until lookahead the wheel cursor can sit on a far event;
  // a later schedule at an *earlier* absolute time must still fire first.
  Simulation sim(GetParam());
  std::vector<int> order;
  sim.schedule_at(SimTime::seconds(10.0), [&] { order.push_back(10); });
  sim.run_until(SimTime::seconds(1.0));
  sim.schedule_at(SimTime::seconds(2.0), [&] { order.push_back(2); });
  sim.schedule_at(SimTime::seconds(5.0), [&] { order.push_back(5); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 5, 10}));
}

TEST_P(SimulationBackends, PastScheduleThrows) {
  Simulation sim(GetParam());
  sim.schedule(SimTime::millis(5), [] {});
  sim.run();
  EXPECT_EQ(sim.now(), SimTime::millis(5));
  EXPECT_THROW(sim.schedule_at(SimTime::millis(1), [] {}), std::logic_error);
}

TEST_P(SimulationBackends, StepFiresExactlyOneEvent) {
  Simulation sim(GetParam());
  int fired = 0;
  sim.schedule(SimTime::millis(1), [&] { ++fired; });
  sim.schedule(SimTime::millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST_P(SimulationBackends, FarFutureAndBlockBoundaryOrdering) {
  // Exercise the wheel's calendar overflow (different 2^32 ns blocks) and
  // exact block-boundary timestamps; the heap backend provides the
  // trivially-correct reference semantics for the same test body.
  Simulation sim(GetParam());
  const std::int64_t kBlock = std::int64_t{1} << 32;  // ~4.29 s in ns
  std::vector<int> order;
  auto at = [&](std::int64_t ns, int id) {
    sim.schedule_at(SimTime::nanos(ns), [&order, id] { order.push_back(id); });
  };
  at(3 * kBlock + 17, 6);
  at(kBlock - 1, 1);
  at(kBlock, 2);
  at(kBlock + 1, 3);
  at(2 * kBlock, 4);
  at(2 * kBlock, 5);        // FIFO with id 4
  at(90 * kBlock + 123, 7); // ~6.4 simulated minutes out
  EXPECT_EQ(sim.run(), 7u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(sim.now(), SimTime::nanos(90 * kBlock + 123));
}

TEST_P(SimulationBackends, DirectDrainAtBlockTopDoesNotStrandOverflow) {
  // Regression: draining the top level-2 slot of a block used to park the
  // cursor into the NEXT 2^32 ns block while the calendar still held that
  // block's bucket. A follow-up scheduled from inside the drained
  // callback then entered the wheel levels and fired ahead of the
  // stranded bucket — out of timestamp order, with now() moving
  // backwards when the bucket finally migrated.
  Simulation sim(GetParam());
  const std::int64_t kBlock = std::int64_t{1} << 32;
  std::vector<int> order;
  std::vector<std::int64_t> fired_at;
  auto record = [&](int id) {
    order.push_back(id);
    fired_at.push_back(sim.now().ns());
  };
  sim.schedule_at(SimTime::nanos(kBlock + 5), [&] { record(1); });
  sim.schedule_at(SimTime::nanos(kBlock - 50), [&] {
    record(2);
    sim.schedule_at(SimTime::nanos(kBlock + 1000), [&] { record(3); });
  });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
  EXPECT_EQ(fired_at, (std::vector<std::int64_t>{kBlock - 50, kBlock + 5,
                                                 kBlock + 1000}));
  EXPECT_EQ(sim.now(), SimTime::nanos(kBlock + 1000));
}

TEST_P(SimulationBackends, Level1DirectDrainAtBlockTopDoesNotStrand) {
  // Same carry bug via the level-1 direct-drain path: the first event
  // parks the cursor at the start of the block's top 2^16 ns window, the
  // second then sits in level-1 slot 255 whose drain would carry into
  // the next block.
  Simulation sim(GetParam());
  const std::int64_t kBlock = std::int64_t{1} << 32;
  std::vector<int> order;
  std::int64_t last_ns = 0;
  auto record = [&](int id) {
    order.push_back(id);
    EXPECT_GE(sim.now().ns(), last_ns) << "now() must never move backwards";
    last_ns = sim.now().ns();
  };
  sim.schedule_at(SimTime::nanos(kBlock + 5), [&] { record(3); });
  sim.schedule_at(SimTime::nanos(kBlock - 2 * 65536 + 7), [&] { record(1); });
  sim.schedule_at(SimTime::nanos(kBlock - 100), [&] {
    record(2);
    sim.schedule_at(SimTime::nanos(kBlock + 1000), [&] { record(4); });
  });
  EXPECT_EQ(sim.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), SimTime::nanos(kBlock + 1000));
}

TEST_P(SimulationBackends, EqualFarTimestampScheduledAcrossAdvances) {
  // A and B share a far timestamp; B is scheduled later (after the clock
  // moved), so it must fire second even though it entered the wheel at a
  // lower level than A did.
  Simulation sim(GetParam());
  std::vector<char> order;
  SimTime target = SimTime::seconds(30.0);
  sim.schedule_at(target, [&] { order.push_back('A'); });
  sim.schedule_at(SimTime::seconds(29.0), [&] {
    sim.schedule_at(target, [&] { order.push_back('B'); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<char>{'A', 'B'}));
}

TEST(SimulationArena, SlabIsRecycledUnderChurn) {
  Simulation sim(SchedulerKind::kWheel);
  // Steady-state schedule→fire churn with one outstanding event must
  // never grow the arena past its first slab.
  for (int i = 0; i < 10000; ++i) {
    sim.schedule(SimTime::micros(3), [] {});
    sim.run();
  }
  EXPECT_EQ(sim.arena_slabs(), 1u);
  EXPECT_EQ(sim.arena_capacity(), EventArena::kSlabNodes);
}

TEST(SimulationArena, GenerationSkipsZeroOnWrap) {
  // Generation 0 is the universal "invalid handle" encoding, so a slot
  // whose generation counter wraps must land on 1, never 0 — otherwise a
  // default EventHandle could suddenly resolve to a live event.
  EventArena arena;
  EventNode* node = arena.allocate(SimTime::nanos(1), 1, [] {});
  const std::uint32_t index = node->index;
  node->gen = 0xffffffffu;  // fast-forward a lifetime of churn
  EXPECT_EQ(arena.resolve(index, 0xffffffffu), node);
  arena.release(node);
  EXPECT_EQ(node->gen, 1u) << "wrap must skip generation 0";
  EXPECT_EQ(arena.resolve(index, 0u), nullptr);
}

TEST(SimulationArena, CancelAfterGenerationWrapIsStale) {
  // A handle minted just before the wrap must stay stale after the slot
  // is recycled, even though the raw index is reused.
  EventArena arena;
  EventNode* node = arena.allocate(SimTime::nanos(1), 1, [] {});
  const std::uint32_t index = node->index;
  node->gen = 0xffffffffu;
  arena.release(node);  // old occupant retired; gen wrapped to 1

  EventNode* reused = arena.allocate(SimTime::nanos(2), 2, [] {});
  ASSERT_EQ(reused, node) << "free list must hand the slot back";
  EXPECT_EQ(arena.resolve(index, 0xffffffffu), nullptr)
      << "pre-wrap handle must not resurrect the recycled slot";
  EXPECT_EQ(arena.resolve(index, 1u), reused);
  arena.release(reused);
  // Freed slot (seq == 0): even a matching generation must not resolve.
  EXPECT_EQ(arena.resolve(index, node->gen), nullptr);
}

TEST(SimulationEnv, SchedulerKindFromEnvironment) {
  ASSERT_EQ(setenv("OFFLOAD_SIM_SCHED", "heap", 1), 0);
  EXPECT_EQ(Simulation().scheduler(), SchedulerKind::kHeap);
  ASSERT_EQ(setenv("OFFLOAD_SIM_SCHED", "wheel", 1), 0);
  EXPECT_EQ(Simulation().scheduler(), SchedulerKind::kWheel);
  ASSERT_EQ(setenv("OFFLOAD_SIM_SCHED", "bogus", 1), 0);
  EXPECT_THROW(Simulation(), std::invalid_argument);
  ASSERT_EQ(unsetenv("OFFLOAD_SIM_SCHED"), 0);
  EXPECT_EQ(Simulation().scheduler(), SchedulerKind::kWheel);
}

// ---------------------------------------------------------------------------
// UniqueFunction

TEST(UniqueFunctionTest, SmallCapturesStayInline) {
  int x = 0;
  UniqueFunction f([&x] { ++x; });
  EXPECT_TRUE(f.is_inline());
  f();
  EXPECT_EQ(x, 1);
}

TEST(UniqueFunctionTest, LargeCapturesFallBackToHeap) {
  std::array<char, 128> big{};
  big[0] = 'a';
  int calls = 0;
  UniqueFunction f([big, &calls] { calls += big[0] == 'a' ? 1 : 0; });
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(calls, 1);
}

TEST(UniqueFunctionTest, MoveTransfersOwnership) {
  auto token = std::make_shared<int>(1);
  UniqueFunction a([token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  UniqueFunction b(std::move(a));
  EXPECT_EQ(token.use_count(), 2) << "move must not copy the capture";
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b);
  b();
  b.reset();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(UniqueFunctionTest, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(41);
  int seen = 0;
  UniqueFunction f([owned = std::move(owned), &seen] { seen = *owned + 1; });
  UniqueFunction g(std::move(f));
  g();
  EXPECT_EQ(seen, 42);
}

TEST(UniqueFunctionTest, AssignmentDestroysPreviousCallable) {
  auto first = std::make_shared<int>(1);
  UniqueFunction f([first] { (void)*first; });
  EXPECT_EQ(first.use_count(), 2);
  f = UniqueFunction([] {});
  EXPECT_EQ(first.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Heap-vs-wheel differential: identical firing order over randomized
// schedule / cancel / run_until workloads, including chained events that
// schedule follow-ups from inside callbacks.

struct DifferentialSim {
  Simulation sim;
  std::vector<int> fired;
  std::vector<EventHandle> handles;

  explicit DifferentialSim(SchedulerKind kind) : sim(kind) {}

  void schedule_recording(std::int64_t delay_ns, int id, int chain_depth) {
    handles.push_back(sim.schedule(SimTime::nanos(delay_ns), [this, id,
                                                             chain_depth] {
      fired.push_back(id);
      if (chain_depth > 0) {
        // Deterministic follow-up derived from the parent id.
        std::int64_t gap = 1 + (id * 2654435761LL) % 5000000;
        schedule_recording(gap, id + 1000000 * chain_depth, chain_depth - 1);
      }
    }));
  }
};

void RunDifferentialWorkload(std::uint64_t seed, int steps) {
  DifferentialSim heap(SchedulerKind::kHeap);
  DifferentialSim wheel(SchedulerKind::kWheel);
  Pcg32 rng(seed, 0xd1ff);
  int next_id = 0;
  // Delay scales from nanoseconds to tens of simulated seconds, so the
  // wheel sees level-0 hits, cascades, and calendar-overflow migrations.
  const std::int64_t scales[] = {0, 100, 50000, 7000000, 900000000,
                                 30000000000};
  for (int step = 0; step < steps; ++step) {
    std::uint32_t op = rng.next_below(100);
    if (op < 55) {
      std::int64_t base = scales[rng.next_below(6)];
      std::int64_t delay = base + rng.next_below(1000);
      int chain = rng.next_below(10) == 0 ? 2 : 0;
      int id = next_id++;
      heap.schedule_recording(delay, id, chain);
      wheel.schedule_recording(delay, id, chain);
    } else if (op < 75 && !heap.handles.empty()) {
      std::uint32_t pick =
          rng.next_below(static_cast<std::uint32_t>(heap.handles.size()));
      bool a = heap.sim.cancel(heap.handles[pick]);
      bool b = wheel.sim.cancel(wheel.handles[pick]);
      ASSERT_EQ(a, b) << "cancel result diverged at step " << step;
    } else if (op < 90) {
      SimTime until =
          heap.sim.now() + SimTime::nanos(rng.next_below(2000000000));
      std::size_t a = heap.sim.run_until(until);
      std::size_t b = wheel.sim.run_until(until);
      ASSERT_EQ(a, b) << "run_until fired-count diverged at step " << step;
    } else {
      ASSERT_EQ(heap.sim.step(), wheel.sim.step());
    }
    ASSERT_EQ(heap.sim.pending(), wheel.sim.pending());
    ASSERT_EQ(heap.sim.now().ns(), wheel.sim.now().ns());
  }
  heap.sim.run();
  wheel.sim.run();
  ASSERT_EQ(heap.fired.size(), wheel.fired.size());
  ASSERT_EQ(heap.fired, wheel.fired);
  EXPECT_EQ(heap.sim.now().ns(), wheel.sim.now().ns());
}

TEST(SchedulerDifferential, IdenticalFiringOrderAcrossBackends) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunDifferentialWorkload(seed, 600);
  }
}

TEST(SchedulerDifferential, BlockBoundaryClusteredOrdering) {
  // Timestamps clustered tightly around 2^32 ns block boundaries, so the
  // top slots of every wheel level — the direct-drain paths whose cursor
  // parking can carry across a block — are hit constantly while the next
  // block's overflow bucket is pending, and chained follow-ups land in
  // that bucket's block from inside callbacks.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    DifferentialSim heap(SchedulerKind::kHeap);
    DifferentialSim wheel(SchedulerKind::kWheel);
    Pcg32 rng(seed, 0xb10c);
    const std::int64_t kBlock = std::int64_t{1} << 32;
    int next_id = 0;
    for (int round = 1; round <= 4; ++round) {
      for (int i = 0; i < 300; ++i) {
        std::int64_t target = round * kBlock - 70000 +
                              static_cast<std::int64_t>(rng.next_below(80000));
        std::int64_t now = heap.sim.now().ns();
        if (target < now) target = now;
        int chain = rng.next_below(8) == 0 ? 1 : 0;
        int id = next_id++;
        heap.schedule_recording(target - now, id, chain);
        wheel.schedule_recording(target - now, id, chain);
      }
      SimTime until = SimTime::nanos(round * kBlock + 500);
      std::size_t a = heap.sim.run_until(until);
      std::size_t b = wheel.sim.run_until(until);
      ASSERT_EQ(a, b) << "run_until fired-count diverged in round " << round;
      ASSERT_EQ(heap.sim.now().ns(), wheel.sim.now().ns());
    }
    heap.sim.run();
    wheel.sim.run();
    ASSERT_EQ(heap.fired, wheel.fired);
    EXPECT_EQ(heap.sim.now().ns(), wheel.sim.now().ns());
  }
}

TEST(SchedulerDifferential, HeavyEqualTimestampContention) {
  // Many events collapsing onto few distinct timestamps: the strongest
  // FIFO stress for the wheel's slot-drain sorting.
  DifferentialSim heap(SchedulerKind::kHeap);
  DifferentialSim wheel(SchedulerKind::kWheel);
  Pcg32 rng(99, 0xc0);
  for (int i = 0; i < 3000; ++i) {
    std::int64_t delay = 1000000 * static_cast<std::int64_t>(rng.next_below(5));
    heap.schedule_recording(delay, i, 0);
    wheel.schedule_recording(delay, i, 0);
  }
  heap.sim.run();
  wheel.sim.run();
  ASSERT_EQ(heap.fired, wheel.fired);
}

// ---------------------------------------------------------------------------
// Workload generator: determinism and knob behaviour.

TEST(WorkloadGenerator, DeterministicStreamAcrossRunsAndBackends) {
  auto collect = [](SchedulerKind kind) {
    Simulation sim(kind);
    workload::Config cfg;
    cfg.clients = 200;
    cfg.seed = 7;
    cfg.arrivals.session_rate_per_s = 50;
    cfg.arrivals.pattern = workload::ArrivalConfig::Pattern::kBursty;
    cfg.session.cache_ttl_s = 5;
    std::vector<std::tuple<std::int64_t, std::uint64_t, bool>> seen;
    workload::Generator gen(sim, cfg, [&](const workload::Request& r) {
      seen.emplace_back(r.at.ns(), r.client, r.cold_model);
    });
    gen.start(SimTime::seconds(20.0));
    sim.run();
    return seen;
  };
  auto a = collect(SchedulerKind::kWheel);
  auto b = collect(SchedulerKind::kWheel);
  auto c = collect(SchedulerKind::kHeap);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same seed must reproduce the byte-identical stream";
  EXPECT_EQ(a, c) << "the stream must not depend on the scheduler backend";
}

TEST(WorkloadGenerator, ColdWarmMixFollowsCacheTtl) {
  Simulation sim(SchedulerKind::kWheel);
  workload::Config cfg;
  cfg.clients = 10;
  cfg.seed = 3;
  cfg.arrivals.session_rate_per_s = 20;
  cfg.session.cache_ttl_s = 1e9;  // never expires: only first touch is cold
  workload::Generator gen(sim, cfg, [](const workload::Request&) {});
  gen.start(SimTime::seconds(30.0));
  sim.run();
  EXPECT_GT(gen.sessions_started(), 50u);
  EXPECT_LE(gen.cold_sessions(), 10u) << "at most one cold session per client";
  EXPECT_GT(gen.cold_sessions(), 0u);
}

TEST(WorkloadGenerator, WarmStartFractionPreSeedsCaches) {
  workload::Config cfg;
  cfg.clients = 500;
  cfg.seed = 11;
  cfg.arrivals.session_rate_per_s = 100;
  cfg.session.cache_ttl_s = 1e9;
  auto cold_count = [&cfg](double warm_fraction) {
    Simulation sim(SchedulerKind::kWheel);
    cfg.session.warm_start_fraction = warm_fraction;
    workload::Generator gen(sim, cfg, [](const workload::Request&) {});
    gen.start(SimTime::seconds(10.0));
    sim.run();
    return gen.cold_sessions();
  };
  std::uint64_t all_cold = cold_count(0.0);
  std::uint64_t mostly_warm = cold_count(0.9);
  EXPECT_LT(mostly_warm * 3, all_cold)
      << "pre-seeded caches must slash cold sessions";
}

TEST(WorkloadGenerator, FlashCrowdRaisesArrivalRateInWindow) {
  auto sessions_in = [](bool flash, double lo, double hi) {
    Simulation sim(SchedulerKind::kWheel);
    workload::Config cfg;
    cfg.clients = 1000;
    cfg.seed = 5;
    cfg.arrivals.session_rate_per_s = 30;
    if (flash) cfg.arrivals.flash_crowds = {{10.0, 5.0, 8.0}};
    std::uint64_t count = 0;
    workload::Generator gen(sim, cfg, [&](const workload::Request& r) {
      double t = r.at.to_seconds();
      if (r.index_in_session == 0 && t >= lo && t < hi) ++count;
    });
    gen.start(SimTime::seconds(30.0));
    sim.run();
    return count;
  };
  std::uint64_t quiet = sessions_in(false, 10.0, 15.0);
  std::uint64_t crowd = sessions_in(true, 10.0, 15.0);
  EXPECT_GT(crowd, quiet * 4) << "8x flash crowd must dominate the window";
}

TEST(WorkloadGenerator, DeviceClassesCoverPopulationByWeight) {
  Simulation sim(SchedulerKind::kWheel);
  workload::Config cfg;
  cfg.clients = 5000;
  cfg.seed = 17;
  workload::Generator gen(sim, cfg, [](const workload::Request&) {});
  std::vector<int> counts(workload::default_device_classes().size(), 0);
  for (std::uint64_t c = 0; c < cfg.clients; ++c) {
    ++counts[gen.device_class_of(c)];
  }
  // Weights 0.35 / 0.45 / 0.20 — allow generous sampling slack.
  EXPECT_NEAR(counts[0] / 5000.0, 0.35, 0.05);
  EXPECT_NEAR(counts[1] / 5000.0, 0.45, 0.05);
  EXPECT_NEAR(counts[2] / 5000.0, 0.20, 0.05);
}

}  // namespace
}  // namespace offload::sim
