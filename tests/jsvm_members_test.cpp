// Coverage for property/index dispatch edge cases across all value types
// (members.cpp) and builtin corner cases not exercised elsewhere.
#include <gtest/gtest.h>

#include "src/jsvm/interpreter.h"
#include "src/jsvm/lexer.h"

namespace offload::jsvm {
namespace {

double num(Interpreter& i, const std::string& src) {
  return to_number(i.eval_program(src));
}

TEST(Members, ArrayLengthAssignmentResizes) {
  Interpreter i;
  EXPECT_EQ(num(i, "var a = [1, 2, 3]; a.length = 1; a.length;"), 1);
  EXPECT_EQ(num(i, "a.length = 4; a.length;"), 4);
  EXPECT_TRUE(is_undefined(i.eval_program("a[3];")));
  EXPECT_THROW(i.eval_program("a.length = -1;"), JsError);
  EXPECT_THROW(i.eval_program("a.length = 1.5;"), JsError);
}

TEST(Members, ArrayUnknownPropertyThrows) {
  Interpreter i;
  EXPECT_THROW(i.eval_program("[1].nope;"), JsError);
  EXPECT_THROW(i.eval_program("var a = [1]; a.nope = 2;"), JsError);
}

TEST(Members, ArrayGrowOnlyByOne) {
  Interpreter i;
  EXPECT_THROW(i.eval_program("var a = []; a[5] = 1;"), JsError);
  EXPECT_EQ(num(i, "var b = []; b[0] = 1; b[1] = 2; b.length;"), 2);
}

TEST(Members, StringIndexAndBounds) {
  Interpreter i;
  EXPECT_EQ(to_display_string(i.eval_program("'abc'[0];")), "a");
  EXPECT_THROW(i.eval_program("'abc'[3];"), JsError);
  EXPECT_THROW(i.eval_program("'abc'[-1];"), JsError);
  // charAt is lenient (returns empty), like JS.
  EXPECT_EQ(to_display_string(i.eval_program("'abc'.charAt(99);")), "");
}

TEST(Members, TypedArrayStrictBounds) {
  Interpreter i;
  i.eval_program("var t = Float32Array(2);");
  EXPECT_THROW(i.eval_program("t[2];"), JsError);
  EXPECT_THROW(i.eval_program("t[2] = 1;"), JsError);  // no growth
  EXPECT_THROW(i.eval_program("t[0.5];"), JsError);
  EXPECT_THROW(i.eval_program("t.nope;"), JsError);
}

TEST(Members, TypedArrayValuesTruncateToFloat32) {
  Interpreter i;
  // 0.1 is not representable in float32; reading it back gives the
  // float32-rounded value, not the double.
  i.eval_program("var t = Float32Array(1); t[0] = 0.1;");
  double read = num(i, "t[0];");
  EXPECT_EQ(static_cast<float>(read), 0.1f);
  EXPECT_NE(read, 0.1);
}

TEST(Members, ObjectNumericKeysCoerceToStrings) {
  Interpreter i;
  EXPECT_EQ(num(i, "var o = {}; o[3] = 7; o['3'];"), 7);
  EXPECT_EQ(num(i, "o[3.0];"), 7);
}

TEST(Members, DomNavigation) {
  Interpreter i;
  i.eval_program(
      "var parent = document.createElement('div');"
      "var kid1 = document.createElement('span');"
      "var kid2 = document.createElement('p');"
      "parent.appendChild(kid1); parent.appendChild(kid2);"
      "document.body.appendChild(parent);");
  EXPECT_EQ(to_display_string(i.eval_program("parent.firstChild.tagName;")),
            "span");
  EXPECT_EQ(num(i, "parent.childCount;"), 2);
  EXPECT_EQ(to_display_string(i.eval_program("kid1.parentNode.tagName;")),
            "div");
  EXPECT_TRUE(is_null(i.eval_program(
      "var orphan = document.createElement('b'); orphan.parentNode;")));
  EXPECT_TRUE(is_null(i.eval_program("kid1.firstChild;")));
}

TEST(Members, DomReparentingMovesNode) {
  Interpreter i;
  i.eval_program(
      "var a = document.createElement('div');"
      "var b = document.createElement('div');"
      "var kid = document.createElement('span');"
      "a.appendChild(kid); b.appendChild(kid);");
  EXPECT_EQ(num(i, "a.childCount;"), 0);
  EXPECT_EQ(num(i, "b.childCount;"), 1);
  EXPECT_EQ(to_display_string(i.eval_program("kid.parentNode == b;")),
            "true");
}

TEST(Members, RemoveChildErrors) {
  Interpreter i;
  i.eval_program(
      "var a = document.createElement('div');"
      "var stranger = document.createElement('span');");
  EXPECT_THROW(i.eval_program("a.removeChild(stranger);"), JsError);
  EXPECT_THROW(i.eval_program("a.removeChild(42);"), JsError);
  EXPECT_THROW(i.eval_program("a.appendChild('nope');"), JsError);
}

TEST(Members, DomSettersCoerceToText) {
  Interpreter i;
  i.eval_program("var d = document.createElement('div'); d.textContent = 42;"
                 "d.id = true;");
  DomNodePtr node = std::get<DomNodePtr>(*i.globals()->find("d"));
  EXPECT_EQ(node->text, "42");
  EXPECT_EQ(node->id, "true");
  EXPECT_THROW(i.eval_program("d.tagName = 'img';"), JsError);
}

TEST(Members, FunctionNameProperty) {
  Interpreter i;
  EXPECT_EQ(to_display_string(i.eval_program(
                "function foo() {} foo.name;")),
            "foo");
  EXPECT_EQ(to_display_string(i.eval_program("Math.floor.name;")),
            "Math.floor");
  EXPECT_THROW(i.eval_program("foo.nope;"), JsError);
}

TEST(Members, IndexingNonIndexableThrows) {
  Interpreter i;
  EXPECT_THROW(i.eval_program("(5)[0];"), JsError);
  EXPECT_THROW(i.eval_program("true[0];"), JsError);
  EXPECT_THROW(i.eval_program("var f = function() {}; f[0] = 1;"), JsError);
}

TEST(Builtins, Float32ArrayFromTypedArrayCopies) {
  Interpreter i;
  i.eval_program(
      "var a = Float32Array([1, 2]); var b = Float32Array(a); b[0] = 9;");
  EXPECT_EQ(num(i, "a[0];"), 1);
  EXPECT_EQ(num(i, "b[0];"), 9);
  EXPECT_THROW(i.eval_program("Float32Array('str');"), JsError);
  EXPECT_THROW(i.eval_program("Float32Array(-1);"), JsError);
}

TEST(Builtins, DomByIndexAddressesDfsOrder) {
  Interpreter i;
  i.eval_program(
      "var a = document.createElement('a');"
      "var b = document.createElement('b');"
      "var c = document.createElement('c');"
      "a.appendChild(b); document.body.appendChild(a);"
      "document.body.appendChild(c);");
  EXPECT_EQ(to_display_string(i.eval_program("__domByIndex(0).tagName;")),
            "body");
  EXPECT_EQ(to_display_string(i.eval_program("__domByIndex(1).tagName;")),
            "a");
  EXPECT_EQ(to_display_string(i.eval_program("__domByIndex(2).tagName;")),
            "b");
  EXPECT_EQ(to_display_string(i.eval_program("__domByIndex(3).tagName;")),
            "c");
  EXPECT_THROW(i.eval_program("__domByIndex(4);"), JsError);
}

TEST(Builtins, NativeLookupErrors) {
  Interpreter i;
  EXPECT_THROW(i.eval_program("__native('no.such.native');"), JsError);
  EXPECT_EQ(num(i, "__native('Math.floor')(2.9);"), 2);
}

TEST(Builtins, ClosureIntrinsicValidatesInput) {
  Interpreter i;
  EXPECT_THROW(i.eval_program("__closure('not a function', null);"),
               ParseError);
  EXPECT_THROW(i.eval_program("__closure(42, null);"), JsError);
  EXPECT_EQ(num(i, "var f = __closure('function (x) { return x + 1; }', "
                   "null); f(41);"),
            42);
}

TEST(Builtins, MethodsAsValuesStayCallable) {
  Interpreter i;
  // Unbound built-in methods re-bind through the call receiver.
  EXPECT_EQ(num(i, "var p = [].push; var a = [1]; a.push(2); a.length;"), 2);
  // Calling with a wrong receiver fails cleanly.
  EXPECT_THROW(i.eval_program("var f = 'x'.charAt; var o = {m: f}; o.m(0);"),
               JsError);
}

}  // namespace
}  // namespace offload::jsvm
