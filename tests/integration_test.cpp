// End-to-end integration tests: client + shaped link + edge server running
// real apps through the full offloading protocol. Uses the small test CNN
// so the suite stays fast; the paper-scale models are exercised by one
// slower smoke test and by the bench binaries.
#include <gtest/gtest.h>

#include "src/core/offload.h"

namespace offload::core {
namespace {

/// A BenchmarkModel wrapper for the tiny test CNN (3x32x32 input).
nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

TEST(Integration, LocalExecutionProducesResult) {
  RunResult local = run_scenario(tiny_model(), Scenario::kClientOnly);
  EXPECT_FALSE(local.offloaded);
  EXPECT_TRUE(local.result_text.rfind("label ", 0) == 0) << local.result_text;
  EXPECT_GT(local.inference_seconds, 0);
  EXPECT_GT(local.breakdown.dnn_execution_client, 0);
  EXPECT_EQ(local.breakdown.dnn_execution_server, 0);
}

TEST(Integration, OffloadAfterAckMatchesLocalResultExactly) {
  RunResult local = run_scenario(tiny_model(), Scenario::kClientOnly);
  RunResult off = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  EXPECT_TRUE(off.offloaded);
  // Bit-exact: same weights, same input, deterministic float path, and the
  // snapshot round-trips every value exactly.
  EXPECT_EQ(off.result_text, local.result_text);
}

TEST(Integration, OffloadBeforeAckMatchesToo) {
  RunResult local = run_scenario(tiny_model(), Scenario::kClientOnly);
  RunResult off = run_scenario(tiny_model(), Scenario::kOffloadBeforeAck);
  EXPECT_TRUE(off.offloaded);
  EXPECT_EQ(off.result_text, local.result_text);
  // Before ACK the upload path must include the model bytes: transmission
  // dominates.
  EXPECT_GT(off.breakdown.transmission_up, 0.9 * off.inference_seconds * 0.2);
}

TEST(Integration, PartialInferenceMatchesFullResult) {
  RunResult local = run_scenario(tiny_model(), Scenario::kClientOnly);
  RunResult partial = run_scenario(tiny_model(), Scenario::kOffloadPartial);
  EXPECT_TRUE(partial.offloaded);
  EXPECT_EQ(partial.result_text, local.result_text);
  // Front part ran on the client.
  EXPECT_GT(partial.breakdown.dnn_execution_client, 0);
  EXPECT_GT(partial.breakdown.dnn_execution_server, 0);
}

TEST(Integration, BeforeAckSlowerThanAfterAck) {
  RunResult before = run_scenario(tiny_model(), Scenario::kOffloadBeforeAck);
  RunResult after = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  EXPECT_GT(before.inference_seconds, after.inference_seconds);
}

TEST(Integration, BreakdownSumsToTotal) {
  RunResult off = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  EXPECT_NEAR(off.breakdown.total(), off.inference_seconds, 1e-9);
  for (double v : off.breakdown.values()) {
    EXPECT_GE(v, -1e-12);
  }
}

TEST(Integration, ModelUploadAckObserved) {
  RunResult off = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  ASSERT_TRUE(off.timeline.ack_received.has_value());
  EXPECT_GT(off.model_upload_seconds, 0);
  // Tiny model ≈ 0.5 MB → ~0.13 s at 30 Mbps.
  EXPECT_LT(off.model_upload_seconds, 2.0);
}

TEST(Integration, SnapshotExcludesModelViaHostObject) {
  RunResult off = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  // The migrated snapshot must be far smaller than the model weights.
  auto net = nn::build_tiny_cnn(17);
  EXPECT_LT(off.timeline.snapshot_stats.total_bytes, net->param_bytes() / 4);
  EXPECT_GT(off.timeline.snapshot_stats.total_bytes, 1000u);
}

TEST(Integration, PartialSnapshotOmitsInputImage) {
  RunResult full = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  RunResult partial = run_scenario(tiny_model(), Scenario::kOffloadPartial);
  // Full offload migrates the 3x32x32 image (3072 floats); partial
  // migrates the post-pool feature (16x16x16 = 4096 floats) but NOT the
  // image. Both have exactly one typed array in flight.
  EXPECT_EQ(full.timeline.snapshot_stats.typed_arrays, 1u);
  EXPECT_EQ(partial.timeline.snapshot_stats.typed_arrays, 1u);
}

TEST(Integration, OnDemandInstallationCompletes) {
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.server.offloading_system_installed = false;
  config.client.offload = true;
  config.client.install_on_demand = true;
  // Shrink the synthetic system bundle so the test stays fast.
  config.client.overlay_sizes.browser_bytes = 300'000;
  config.client.overlay_sizes.libraries_bytes = 300'000;
  config.client.overlay_sizes.server_program_bytes = 20'000;
  config.click_at = sim::SimTime::seconds(0.05);

  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();
  EXPECT_TRUE(result.offloaded);
  EXPECT_EQ(runtime.server().stats().overlays_installed, 1);
  EXPECT_TRUE(runtime.server().installed());
  EXPECT_TRUE(result.result_text.rfind("label ", 0) == 0);
  // Model files arrived inside the overlay.
  EXPECT_TRUE(runtime.server().model_store().can_instantiate("tinycnn"));
}

TEST(Integration, RefusedWithoutInstallStalls) {
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.server.offloading_system_installed = false;
  config.client.install_on_demand = false;
  config.click_at = sim::SimTime::seconds(0.05);
  OffloadingRuntime runtime(config, std::move(bundle));
  EXPECT_THROW(runtime.run(), std::runtime_error);
  EXPECT_GT(runtime.server().stats().refused, 0);
}

TEST(Integration, ServerExecutionRecordConsistent) {
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();
  ASSERT_TRUE(result.server_record.has_value());
  EXPECT_GT(result.server_record->restore_s, 0);
  EXPECT_GT(result.server_record->execute_s, 0);
  EXPECT_GT(result.server_record->capture_s, 0);
  EXPECT_EQ(runtime.server().stats().snapshots_executed, 1);
}

TEST(Integration, ResultSnapshotUpdatesClientDom) {
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();
  // The DOM mutation performed on the server is visible on the client.
  jsvm::DomNodePtr node =
      runtime.client().browser().interp().document().get_element_by_id(
          "result");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->text, result.result_text);
  EXPECT_FALSE(result.result_text.empty());
}

TEST(Integration, SlowerNetworkSlowsOffloadNotClient) {
  ScenarioOptions slow;
  slow.bandwidth_bps = 5e6;
  ScenarioOptions fast;
  fast.bandwidth_bps = 100e6;
  RunResult off_slow = run_scenario(tiny_model(), Scenario::kOffloadAfterAck,
                                    slow);
  RunResult off_fast = run_scenario(tiny_model(), Scenario::kOffloadAfterAck,
                                    fast);
  EXPECT_GT(off_slow.inference_seconds, off_fast.inference_seconds);
  RunResult local_slow =
      run_scenario(tiny_model(), Scenario::kClientOnly, slow);
  RunResult local_fast =
      run_scenario(tiny_model(), Scenario::kClientOnly, fast);
  EXPECT_DOUBLE_EQ(local_slow.inference_seconds, local_fast.inference_seconds);
}

TEST(Integration, DeterministicAcrossRuns) {
  RunResult a = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  RunResult b = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  EXPECT_DOUBLE_EQ(a.inference_seconds, b.inference_seconds);
  EXPECT_EQ(a.result_text, b.result_text);
  EXPECT_EQ(a.timeline.snapshot_stats.total_bytes,
            b.timeline.snapshot_stats.total_bytes);
}

// One paper-scale smoke test (AgeNet ≈ 11M params). Slower (~seconds);
// validates the full pipeline at realistic sizes.
TEST(IntegrationPaperScale, AgeNetOffloadAfterAck) {
  nn::BenchmarkModel agenet{"AgeNet", &nn::build_agenet, 11, 227};
  RunResult local = run_scenario(agenet, Scenario::kClientOnly);
  RunResult off = run_scenario(agenet, Scenario::kOffloadAfterAck);
  EXPECT_EQ(off.result_text, local.result_text);
  EXPECT_TRUE(off.offloaded);
  // The paper's headline: offloading after ACK beats local execution by a
  // wide margin and lands near server-only time.
  EXPECT_LT(off.inference_seconds, local.inference_seconds / 2);
  RunResult server = run_scenario(agenet, Scenario::kServerOnly);
  EXPECT_LT(off.inference_seconds, server.inference_seconds * 4);
}

}  // namespace
}  // namespace offload::core
