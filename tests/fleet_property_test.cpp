// Property tests for the fleet balancer (src/fleet) and the routed
// end-to-end pipeline.
//
// The balancer is pure state + a seeded PCG32 stream, so its properties are
// checked directly over a wide seed grid (hundreds of seeds × three
// policies × fleet sizes) — determinism across identical runs and across
// worker-pool thread counts, the p2c max-load bound, and the
// consistent-hashing remap guarantee. A smaller end-to-end grid then runs
// whole supervised offloads through a routed fleet under PR 3 fault plans
// and demands that no inference is ever lost.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/offload.h"
#include "src/obs/export.h"
#include "src/util/thread_pool.h"

namespace offload::fleet {
namespace {

struct PoolGuard {
  ~PoolGuard() { util::set_default_pool_threads(0); }
};

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

const char* kPolicies[] = {"hash", "least_outstanding", "p2c"};
const std::size_t kSizes[] = {2, 4, 8};

/// Drive one balancer through a fixed request schedule (route, charge the
/// primary, release the oldest charge every third request) and serialize
/// every candidate list. Any nondeterminism anywhere shows up as a string
/// diff.
std::string routing_transcript(const BalancerConfig& config, std::size_t n,
                               int requests) {
  Balancer balancer(config, n);
  std::vector<int> outstanding(n, 0);
  std::vector<std::size_t> charges;
  std::ostringstream out;
  for (int r = 0; r < requests; ++r) {
    std::vector<std::size_t> order =
        balancer.route("session-" + std::to_string(r % 17), outstanding);
    out << r << ":";
    for (std::size_t id : order) out << " " << id;
    out << "\n";
    charges.push_back(order.front());
    ++outstanding[order.front()];
    if (r % 3 == 2) {
      --outstanding[charges.front()];
      charges.erase(charges.begin());
    }
  }
  return out.str();
}

TEST(FleetProperty, RoutingDeterministicAcrossRunsAndThreadCounts) {
  PoolGuard guard;
  for (const char* policy : kPolicies) {
    for (std::size_t n : kSizes) {
      for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        BalancerConfig config;
        config.policy = policy;
        config.seed = seed;
        util::set_default_pool_threads(1);
        const std::string first = routing_transcript(config, n, 60);
        const std::string again = routing_transcript(config, n, 60);
        util::set_default_pool_threads(4);
        const std::string threaded = routing_transcript(config, n, 60);
        ASSERT_EQ(first, again)
            << policy << " n=" << n << " seed=" << seed << " is unstable";
        ASSERT_EQ(first, threaded)
            << policy << " n=" << n << " seed=" << seed
            << " depends on OFFLOAD_THREADS";
      }
    }
  }
}

TEST(FleetProperty, CandidateListIsAPermutationOfTheFleet) {
  for (const char* policy : kPolicies) {
    for (std::size_t n : kSizes) {
      BalancerConfig config;
      config.policy = policy;
      config.seed = 7;
      Balancer balancer(config, n);
      std::vector<int> outstanding(n, 0);
      for (int r = 0; r < 100; ++r) {
        std::vector<std::size_t> order =
            balancer.route("s" + std::to_string(r), outstanding);
        ASSERT_EQ(order.size(), n) << policy;
        std::set<std::size_t> distinct(order.begin(), order.end());
        ASSERT_EQ(distinct.size(), n)
            << policy << " repeated a server in one candidate list";
        ASSERT_LT(*std::max_element(order.begin(), order.end()), n);
        outstanding[order.front()] = (outstanding[order.front()] + r) % 5;
      }
    }
  }
}

TEST(FleetProperty, P2cMaxLoadStaysWithinLogLogBoundOfMean) {
  // Balls-into-bins with load feedback: place `balls` sticky requests
  // (each charges its primary permanently). Classic p2c theory bounds the
  // max bin at mean + O(log log n); with full load visibility the constant
  // is tiny, so mean + log2(log2(n)+1) + 2 is generous yet sharp enough to
  // catch a broken draw stream (uniform random placement would exceed it
  // with overwhelming probability at these counts).
  for (std::size_t n : kSizes) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
      BalancerConfig config;
      config.policy = "p2c";
      config.seed = seed;
      Balancer balancer(config, n);
      const int balls = 200 * static_cast<int>(n);
      std::vector<int> outstanding(n, 0);
      for (int r = 0; r < balls; ++r) {
        std::vector<std::size_t> order = balancer.route("", outstanding);
        ++outstanding[order.front()];
      }
      const double mean = static_cast<double>(balls) / static_cast<double>(n);
      const double bound =
          mean + std::log2(std::log2(static_cast<double>(n)) + 1.0) + 2.0;
      const int max_load =
          *std::max_element(outstanding.begin(), outstanding.end());
      ASSERT_LE(max_load, bound)
          << "n=" << n << " seed=" << seed << " p2c balance degenerated";
    }
  }
}

TEST(FleetProperty, ConsistentHashRemapsAtMostTwoOverNOnRemoval) {
  const int kSessions = 1000;
  for (std::size_t n : {std::size_t{4}, std::size_t{8}}) {
    BalancerConfig config;
    config.policy = "hash";
    Balancer balancer(config, n);
    std::vector<int> idle(n, 0);
    std::map<std::string, std::size_t> before;
    for (int s = 0; s < kSessions; ++s) {
      std::string key = "session-" + std::to_string(s);
      before[key] = balancer.route(key, idle).front();
    }
    for (std::size_t removed = 0; removed < n; ++removed) {
      balancer.remove_server(removed);
      int remapped = 0;
      for (const auto& [key, old_primary] : before) {
        std::size_t now = balancer.route(key, idle).front();
        if (old_primary == removed) {
          ASSERT_NE(now, removed);
          ++remapped;
        } else {
          // The consistent-hashing contract: sessions not owned by the
          // removed server keep their primary exactly.
          ASSERT_EQ(now, old_primary)
              << key << " moved although server " << removed
              << " did not own it";
        }
      }
      ASSERT_LE(remapped, 2 * kSessions / static_cast<int>(n))
          << "removing server " << removed << " of " << n
          << " remapped too much";
      // Re-adding restores the original assignment bit-for-bit.
      balancer.add_server(removed);
      for (const auto& [key, old_primary] : before) {
        ASSERT_EQ(balancer.route(key, idle).front(), old_primary);
      }
    }
  }
}

TEST(FleetProperty, HashFailoverOrderSurvivesPrimaryRemoval) {
  // Removing a session's primary must promote its *existing* second
  // choice — the ring walk is unchanged apart from the removed points.
  BalancerConfig config;
  config.policy = "hash";
  Balancer balancer(config, 5);
  std::vector<int> idle(5, 0);
  for (int s = 0; s < 200; ++s) {
    std::string key = "k" + std::to_string(s);
    std::vector<std::size_t> order = balancer.route(key, idle);
    balancer.remove_server(order[0]);
    ASSERT_EQ(balancer.route(key, idle).front(), order[1]) << key;
    balancer.add_server(order[0]);
  }
}

TEST(FleetProperty, BalancerRejectsBadConfigurations) {
  BalancerConfig bad;
  bad.policy = "round_robin";
  EXPECT_THROW(Balancer(bad, 3), std::invalid_argument);
  EXPECT_THROW(Balancer(BalancerConfig{}, 0), std::invalid_argument);
  Balancer one(BalancerConfig{}, 1);
  EXPECT_THROW(one.remove_server(0), std::logic_error);
}

/// One supervised, fleet-routed end-to-end run under a PR 3 fault plan:
/// message chaos on the primary link plus one primary crash. Returns the
/// client's completed-inference count.
std::size_t run_routed_faulted(const char* policy, std::uint64_t seed,
                               obs::Obs* obs_out) {
  edge::AppBundle bundle = core::make_benchmark_app(tiny_model(), false);
  core::RuntimeConfig config;
  config.fleet.size = 2;
  config.fleet.balancer.policy = policy;
  config.fleet.balancer.seed = seed;
  config.fleet.dedup = true;
  config.client.supervisor.enabled = true;
  config.click_at =
      core::after_ack_click_time(*bundle.network, false, 0, 30e6);
  fault::FaultPlanConfig faults = fault::FaultPlanConfig::uniform(0.05, seed);
  fault::CrashSpec crash;
  crash.first_at = config.click_at + sim::SimTime::millis(2);
  crash.downtime = sim::SimTime::seconds(3);
  faults.crashes.push_back(crash);
  config.faults = faults;
  obs::Obs local;
  config.obs = obs_out != nullptr ? obs_out : &local;
  core::OffloadingRuntime runtime(config, std::move(bundle));
  runtime.client().click_at(config.click_at + sim::SimTime::seconds(6));
  runtime.client().click_at(config.click_at + sim::SimTime::seconds(12));
  core::RunResult result = runtime.run();
  EXPECT_TRUE(result.timeline.finished.has_value());
  // Every click completed: the two archived timelines plus the final one.
  EXPECT_EQ(runtime.client().history().size(), 2u);
  for (const edge::ClientTimeline& t : runtime.client().history()) {
    EXPECT_TRUE(t.finished.has_value()) << "an inference was lost";
  }
  return runtime.client().history().size() + 1;
}

TEST(FleetProperty, NoInferenceLostUnderFaultsAcrossPoliciesAndSeeds) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  for (const char* policy : kPolicies) {
    for (std::uint64_t seed : {11ull, 23ull, 47ull}) {
      SCOPED_TRACE(std::string(policy) + " seed=" + std::to_string(seed));
      EXPECT_EQ(run_routed_faulted(policy, seed, nullptr), 3u);
    }
  }
}

TEST(FleetProperty, RoutedTraceByteIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  obs::Obs one;
  run_routed_faulted("p2c", 23, &one);
  util::set_default_pool_threads(4);
  obs::Obs four;
  run_routed_faulted("p2c", 23, &four);
  // Route markers, dedup counters, per-server spans: all byte-identical —
  // the fleet layer sits entirely above the worker pool.
  EXPECT_EQ(obs::to_jsonl(one.trace), obs::to_jsonl(four.trace));
  EXPECT_EQ(one.metrics.dump_text(), four.metrics.dump_text());
}

}  // namespace
}  // namespace offload::fleet
