// Tests for batched NN execution: Tensor::stack/sample round trips, and
// the core contract behind the serving scheduler's fused dispatch — a
// batched forward is bit-identical to forwarding every sample alone and
// stacking the results, at any batch size and any thread count.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/models.h"
#include "src/nn/network.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace {

using namespace offload;
using nn::Shape;
using nn::Tensor;

/// Restores the default pool to the environment-derived size on scope exit
/// so tests do not leak thread-count overrides into each other.
struct PoolGuard {
  ~PoolGuard() { util::set_default_pool_threads(0); }
};

std::vector<Tensor> random_samples(const Shape& shape, int n,
                                   std::uint64_t seed) {
  util::Pcg32 rng(seed, 0xba7c4);
  std::vector<Tensor> samples;
  samples.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    samples.push_back(Tensor::random_uniform(shape, rng, -1.0f, 1.0f));
  }
  return samples;
}

void expect_bit_identical(const Tensor& a, const Tensor& b,
                          const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           static_cast<std::size_t>(a.bytes())))
      << what << ": bits differ";
}

// ---------------------------------------------------------------------------
// Tensor::stack / Tensor::sample

TEST(TensorBatch, StackSampleRoundTrip) {
  auto samples = random_samples(Shape{3, 4, 5}, 4, 11);
  Tensor batched = Tensor::stack(samples);
  EXPECT_EQ(batched.shape(), (Shape{4, 3, 4, 5}));
  for (int b = 0; b < 4; ++b) {
    expect_bit_identical(batched.sample(b),
                         samples[static_cast<std::size_t>(b)],
                         "sample " + std::to_string(b));
  }
}

TEST(TensorBatch, StackRejectsMismatchedShapes) {
  std::vector<Tensor> samples;
  samples.push_back(Tensor::zeros(Shape{2, 2}));
  samples.push_back(Tensor::zeros(Shape{2, 3}));
  EXPECT_THROW(Tensor::stack(samples), std::invalid_argument);
  const std::vector<Tensor> empty;
  EXPECT_THROW(Tensor::stack(empty), std::invalid_argument);
}

TEST(TensorBatch, SampleBoundsChecked) {
  Tensor batched = Tensor::zeros(Shape{2, 3, 3});
  EXPECT_NO_THROW(batched.sample(1));
  EXPECT_THROW(batched.sample(2), std::out_of_range);
  EXPECT_THROW(batched.sample(-1), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Batched network forward == per-sample forward, bit for bit

void check_forward_batch(const nn::Network& net, const Shape& input_shape,
                         int batch, std::uint64_t seed) {
  auto samples = random_samples(input_shape, batch, seed);
  std::vector<Tensor> singles;
  singles.reserve(samples.size());
  for (const Tensor& s : samples) {
    singles.push_back(net.forward(s).output);
  }
  Tensor batched_out = net.forward_batch(Tensor::stack(samples));
  expect_bit_identical(batched_out, Tensor::stack(singles),
                       net.name() + " B=" + std::to_string(batch));
}

TEST(NetworkBatch, TinyCnnMatchesPerSampleAtEveryBatchSize) {
  auto net = nn::build_tiny_cnn(17);
  for (int batch : {1, 2, 3, 5}) {
    check_forward_batch(*net, Shape{3, 32, 32}, batch, 100 + batch);
  }
}

TEST(NetworkBatch, AgeNetMatchesPerSample) {
  // Conv (im2col+GEMM), pool, LRN, fc, dropout, softmax all on the batched
  // path of a real model.
  auto net = nn::build_agenet(11);
  check_forward_batch(*net, Shape{3, 227, 227}, 3, 7);
}

TEST(NetworkBatch, ThreadCountDoesNotChangeBatchedBits) {
  PoolGuard guard;
  auto net = nn::build_tiny_cnn(17);
  Tensor batched = Tensor::stack(random_samples(Shape{3, 32, 32}, 4, 21));

  util::set_default_pool_threads(1);
  Tensor sequential = net->forward_batch(batched);
  util::set_default_pool_threads(4);
  Tensor parallel = net->forward_batch(batched);
  expect_bit_identical(sequential, parallel, "1 thread vs 4 threads");
}

TEST(NetworkBatch, RearBatchMatchesPerSampleThroughInception) {
  // Rear-range dispatch is what the scheduler fuses. Cut GoogLeNet after
  // pool4 so the batched rear covers inception modules (concat joins) at a
  // small spatial size.
  auto net = nn::build_googlenet(7);
  const std::size_t cut = net->index_of("pool4");
  const Shape feature_shape = net->analyze().shapes[cut];

  auto features = random_samples(feature_shape, 3, 13);
  std::vector<Tensor> singles;
  for (const Tensor& f : features) {
    singles.push_back(net->forward_rear(f, cut));
  }
  Tensor batched_out =
      net->forward_rear_batch(Tensor::stack(features), cut);
  expect_bit_identical(batched_out, Tensor::stack(singles),
                       "googlenet rear from pool4");
}

TEST(NetworkBatch, RearBatchValidatesFeatureShape) {
  auto net = nn::build_tiny_cnn(17);
  const std::size_t cut = net->index_of("pool1");
  Tensor wrong = Tensor::zeros(Shape{2, 16, 15, 15});
  EXPECT_THROW(net->forward_rear_batch(wrong, cut), std::invalid_argument);
  Tensor no_batch_dim = Tensor::zeros(net->analyze().shapes[cut]);
  // Rank-3 feature: the leading dim is read as batch and the per-sample
  // shape no longer matches.
  EXPECT_THROW(net->forward_rear_batch(no_batch_dim, cut),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Layer-level batched paths

TEST(LayerBatch, GroupedConvMatchesPerSample) {
  // No stock model uses groups > 1 on the batched path; pin it directly.
  nn::ConvConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 12;
  cfg.kernel = 3;
  cfg.stride = 1;
  cfg.pad = 1;
  cfg.groups = 4;
  nn::ConvLayer conv("gconv", cfg);
  util::Pcg32 rng(3, 4);
  conv.init_params(rng);

  auto samples = random_samples(Shape{8, 9, 9}, 5, 31);
  std::vector<Tensor> singles;
  for (const Tensor& s : samples) {
    const Tensor* in[] = {&s};
    singles.push_back(conv.forward(in));
  }
  Tensor stacked = Tensor::stack(samples);
  const Tensor* bin[] = {&stacked};
  expect_bit_identical(conv.forward_batch(bin, 5), Tensor::stack(singles),
                       "grouped conv");
}

TEST(LayerBatch, DefaultPathSlicesPerSample) {
  // Softmax has no forward_batch override; the Layer default must apply it
  // per sample (one normalization per row), not across the whole batch.
  nn::SoftmaxLayer softmax("prob");
  auto samples = random_samples(Shape{10}, 3, 41);
  std::vector<Tensor> singles;
  for (const Tensor& s : samples) {
    const Tensor* in[] = {&s};
    singles.push_back(softmax.forward(in));
  }
  Tensor stacked = Tensor::stack(samples);
  const Tensor* bin[] = {&stacked};
  Tensor out = softmax.forward_batch(bin, 3);
  expect_bit_identical(out, Tensor::stack(singles), "softmax default batch");
  // Each sample must sum to 1 on its own.
  for (int b = 0; b < 3; ++b) {
    const Tensor row = out.sample(b);
    double sum = 0;
    for (float v : row.data()) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(LayerBatch, BatchDimMismatchThrows) {
  auto net = nn::build_tiny_cnn(17);
  Tensor bad = Tensor::zeros(Shape{3, 32, 32});  // rank 3: batch=3 inferred
  // Leading dim 3 is taken as batch; remaining {32,32} is not a valid
  // input sample shape.
  EXPECT_THROW(net->forward_batch(bad), std::invalid_argument);
}

}  // namespace
