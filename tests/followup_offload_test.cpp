// Integration tests for repeat offloads and the adaptive client policies:
// differential snapshots against the server session (Section VI future
// work), the local-execution fallback while the model uploads
// (Section IV.A), and runtime partition selection (Section III.B.2).
#include <gtest/gtest.h>

#include "src/core/offload.h"

namespace offload::core {
namespace {

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

/// Drive a runtime through two sequential inferences.
struct TwoClickRun {
  RunResult first;
  edge::ClientTimeline second;
  std::string second_result;
};

TwoClickRun run_two_clicks(RuntimeConfig config, bool partial = false) {
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), partial);
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  OffloadingRuntime runtime(config, std::move(bundle));
  TwoClickRun out;
  out.first = runtime.run();
  runtime.client().click_at(runtime.simulation().now() +
                            sim::SimTime::seconds(5));
  runtime.simulation().run();
  EXPECT_TRUE(runtime.client().finished());
  out.second = runtime.client().timeline();
  out.second_result = runtime.client().result_text();
  return out;
}

TEST(FollowupOffload, TwoFullOffloadsBothComplete) {
  RuntimeConfig config;
  TwoClickRun run = run_two_clicks(config);
  EXPECT_TRUE(run.first.offloaded);
  EXPECT_TRUE(run.second.offloaded);
  EXPECT_EQ(run.second_result, run.first.result_text);
  EXPECT_GT(run.second.inference_seconds(), 0);
}

TEST(FollowupOffload, DifferentialSecondOffloadIsTiny) {
  RuntimeConfig config;
  config.client.differential_snapshots = true;
  config.server.keep_sessions = true;
  TwoClickRun run = run_two_clicks(config);

  // First offload ships the full state (the input image dominates).
  EXPECT_FALSE(run.first.timeline.used_differential);
  EXPECT_GT(run.first.timeline.snapshot_stats.total_bytes, 10'000u);
  // Second offload: nothing changed between clicks, so the diff carries
  // essentially just the re-dispatched event.
  EXPECT_TRUE(run.second.used_differential);
  EXPECT_LT(run.second.snapshot_stats.total_bytes, 500u);
  EXPECT_EQ(run.second_result, run.first.result_text);
  // The second inference is faster end to end (no image transfer).
  EXPECT_LT(run.second.inference_seconds(),
            run.first.inference_seconds * 0.9);
}

TEST(FollowupOffload, DifferentialServerStatsAccount) {
  RuntimeConfig config;
  config.client.differential_snapshots = true;
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  OffloadingRuntime runtime(config, std::move(bundle));
  runtime.run();
  runtime.client().click_at(runtime.simulation().now() +
                            sim::SimTime::seconds(5));
  runtime.simulation().run();
  EXPECT_EQ(runtime.server().stats().snapshots_executed, 2);
  EXPECT_EQ(runtime.server().stats().diff_snapshots_applied, 1);
  EXPECT_EQ(runtime.server().stats().diff_version_misses, 0);
}

TEST(FollowupOffload, VersionMissFallsBackToFull) {
  RuntimeConfig config;
  config.client.differential_snapshots = true;
  config.server.keep_sessions = false;  // server drops sessions
  TwoClickRun run = run_two_clicks(config);
  EXPECT_TRUE(run.second.offloaded);
  // The diff was refused; the client resent a full snapshot.
  EXPECT_FALSE(run.second.used_differential);
  EXPECT_GT(run.second.snapshot_stats.total_bytes, 10'000u);
  EXPECT_EQ(run.second_result, run.first.result_text);
}

TEST(FollowupOffload, DifferentialWorksForPartialInference) {
  RuntimeConfig config;
  config.client.differential_snapshots = true;
  config.client.offload_event = "front_complete";
  config.client.partition_cut = 2;
  TwoClickRun run = run_two_clicks(config, /*partial=*/true);
  EXPECT_TRUE(run.second.used_differential);
  EXPECT_EQ(run.second_result, run.first.result_text);
  // The diff still has to carry the fresh feature tensor.
  EXPECT_EQ(run.second.snapshot_stats.typed_arrays, 1u);
  EXPECT_LT(run.second.snapshot_stats.total_bytes,
            run.first.timeline.snapshot_stats.total_bytes);
}

TEST(LocalFallback, RunsLocallyBeforeAckThenOffloads) {
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.client.local_fallback_before_ack = true;
  config.click_at = sim::SimTime::seconds(0.01);  // well before the ACK
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult first = runtime.run();
  EXPECT_FALSE(first.offloaded);
  EXPECT_TRUE(first.timeline.local_fallback);
  EXPECT_GT(first.breakdown.dnn_execution_client, 0);
  std::string local_result = first.result_text;

  // Second click after the ACK: offloads normally.
  runtime.client().click_at(runtime.simulation().now() +
                            sim::SimTime::seconds(10));
  runtime.simulation().run();
  EXPECT_TRUE(runtime.client().timeline().offloaded);
  EXPECT_FALSE(runtime.client().timeline().local_fallback);
  EXPECT_EQ(runtime.client().result_text(), local_result);
}

TEST(LocalFallback, FasterThanWaitingForModelUpload) {
  // The point of the policy: before the ACK, local execution beats
  // queueing the snapshot behind the model upload.
  ScenarioOptions opts;
  RunResult blocking =
      run_scenario(tiny_model(), Scenario::kOffloadBeforeAck, opts);

  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.client.local_fallback_before_ack = true;
  config.click_at = sim::SimTime::seconds(0.05);
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult fallback = runtime.run();
  EXPECT_LT(fallback.inference_seconds, blocking.inference_seconds);
}

TEST(AutoPartition, PicksACutAndMatchesResults) {
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), /*partial=*/true);
  RuntimeConfig config;
  config.client.auto_partition = true;
  config.client.offload_event = "front_complete";
  config.client.partition_cut = SIZE_MAX;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();
  RunResult local = run_scenario(tiny_model(), Scenario::kClientOnly);
  EXPECT_EQ(result.result_text, local.result_text);
  EXPECT_NE(runtime.client().timeline().used_partition_cut, SIZE_MAX);
}

TEST(AutoPartition, TerribleNetworkChoosesLocal) {
  // At 2 kbps the model ACK arrives after ~half an hour of simulated
  // time; the bandwidth estimator observes that, and the partitioner then
  // picks fully-local execution for the click.
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), /*partial=*/true);
  RuntimeConfig config;
  config.client.auto_partition = true;
  config.client.offload_event = "front_complete";
  config.client.partition_cut = SIZE_MAX;
  config.channel.a_to_b.bandwidth_bps = 2e3;
  config.channel.b_to_a.bandwidth_bps = 2e3;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 2e3);
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();
  EXPECT_TRUE(result.timeline.local_fallback);
  EXPECT_FALSE(result.offloaded);
  RunResult local = run_scenario(tiny_model(), Scenario::kClientOnly);
  EXPECT_EQ(result.result_text, local.result_text);
}

}  // namespace
}  // namespace offload::core
