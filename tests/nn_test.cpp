// Unit tests for the CNN engine: tensors, layer math (hand-computed
// cases), graph mechanics, and the three paper models' published shapes
// and sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/activation.h"
#include "src/nn/concat.h"
#include "src/nn/conv.h"
#include "src/nn/dense.h"
#include "src/nn/kernels.h"
#include "src/nn/lrn.h"
#include "src/nn/model_io.h"
#include "src/nn/models.h"
#include "src/nn/network.h"
#include "src/nn/pool.h"

namespace offload::nn {
namespace {

TEST(Tensor, ShapeBasics) {
  Shape s{3, 224, 224};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.elements(), 3 * 224 * 224);
  EXPECT_EQ(s.str(), "3x224x224");
  EXPECT_EQ(Shape{}.elements(), 1);
  EXPECT_EQ((Shape{8}).str(), "8");
}

TEST(Tensor, ConstructAndAccess) {
  Tensor t(Shape{2, 2, 2});
  EXPECT_EQ(t.elements(), 8);
  EXPECT_EQ(t.bytes(), 32u);
  t.at(1, 0, 1) = 5.0f;
  EXPECT_EQ(t.at(1, 0, 1), 5.0f);
  EXPECT_EQ(t[5], 5.0f);  // (1*2+0)*2+1 = 5
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{3}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, Reshape) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped(Shape{6});
  EXPECT_EQ(r[4], 5.0f);
  EXPECT_THROW(t.reshaped(Shape{7}), std::invalid_argument);
}

TEST(Tensor, Argmax) {
  Tensor t(Shape{5}, {0.1f, 0.9f, 0.3f, 0.9f, 0.2f});
  EXPECT_EQ(t.argmax(), 1);  // first max wins
}

TEST(Tensor, RandomUniformDeterministic) {
  util::Pcg32 r1(5);
  util::Pcg32 r2(5);
  Tensor a = Tensor::random_uniform(Shape{100}, r1);
  Tensor b = Tensor::random_uniform(Shape{100}, r2);
  EXPECT_EQ(Tensor::max_abs_diff(a, b), 0.0f);
}

// ------------------------------------------------------------------- conv

/// Exact-value cases assert fp32 semantics: when the ambient backend is
/// int8 (a CI matrix cell), run them on the simd fp32 path instead —
/// bit-exact to scalar by contract, so the hand-computed values hold.
nn::KernelBackend fp32_backend() {
  return nn::active_kernel_ops().quantized ? nn::KernelBackend::kSimd
                                           : nn::active_kernel_backend();
}

TEST(Conv, HandComputedIdentity) {
  nn::ScopedKernelBackend fp32(fp32_backend());
  // 1x1 conv with weight 2 and bias 1 doubles-plus-one every pixel.
  ConvLayer conv("c", {.in_channels = 1, .out_channels = 1, .kernel = 1,
                       .stride = 1, .pad = 0});
  conv.weights()[0] = 2.0f;
  conv.bias()[0] = 1.0f;
  Tensor in(Shape{1, 2, 2}, {1, 2, 3, 4});
  const Tensor* ins[] = {&in};
  Tensor out = conv.forward(ins);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2}));
  EXPECT_EQ(out[0], 3.0f);
  EXPECT_EQ(out[3], 9.0f);
}

TEST(Conv, HandComputed3x3Sum) {
  // 3x3 all-ones filter with pad 1 computes neighborhood sums.
  ConvLayer conv("c", {.in_channels = 1, .out_channels = 1, .kernel = 3,
                       .stride = 1, .pad = 1});
  for (auto& w : conv.weights().data()) w = 1.0f;
  conv.bias()[0] = 0.0f;
  Tensor in(Shape{1, 3, 3}, {1, 1, 1, 1, 1, 1, 1, 1, 1});
  const Tensor* ins[] = {&in};
  Tensor out = conv.forward(ins);
  EXPECT_EQ(out.at(0, 1, 1), 9.0f);  // center sees all 9
  EXPECT_EQ(out.at(0, 0, 0), 4.0f);  // corner sees 4
  EXPECT_EQ(out.at(0, 0, 1), 6.0f);  // edge sees 6
}

TEST(Conv, StrideAndShape) {
  ConvLayer conv("c", {.in_channels = 3, .out_channels = 64, .kernel = 7,
                       .stride = 2, .pad = 3});
  Shape in[] = {Shape{3, 224, 224}};
  EXPECT_EQ(conv.output_shape(in), (Shape{64, 112, 112}));  // GoogLeNet conv1
  EXPECT_EQ(conv.param_count(), 64u * 3 * 7 * 7 + 64u);
}

TEST(Conv, MultiChannelAccumulation) {
  nn::ScopedKernelBackend fp32(fp32_backend());
  ConvLayer conv("c", {.in_channels = 2, .out_channels = 1, .kernel = 1,
                       .stride = 1, .pad = 0});
  conv.weights()[0] = 1.0f;  // channel 0
  conv.weights()[1] = 10.0f;  // channel 1
  Tensor in(Shape{2, 1, 1}, {3, 4});
  const Tensor* ins[] = {&in};
  EXPECT_EQ(conv.forward(ins)[0], 43.0f);
}

TEST(Conv, RejectsBadInput) {
  ConvLayer conv("c", {.in_channels = 3, .out_channels = 8, .kernel = 3,
                       .stride = 1, .pad = 0});
  Shape wrong_ch[] = {Shape{4, 8, 8}};
  EXPECT_THROW(conv.output_shape(wrong_ch), std::invalid_argument);
  Shape too_small[] = {Shape{3, 2, 2}};
  EXPECT_THROW(conv.output_shape(too_small), std::invalid_argument);
  EXPECT_THROW(ConvLayer("bad", {.in_channels = 0, .out_channels = 1,
                                 .kernel = 1, .stride = 1, .pad = 0}),
               std::invalid_argument);
}

TEST(Conv, FlopsFormula) {
  ConvLayer conv("c", {.in_channels = 2, .out_channels = 4, .kernel = 3,
                       .stride = 1, .pad = 1});
  Shape in[] = {Shape{2, 8, 8}};
  // out elems = 4*8*8 = 256; per elem 2*2*9+1 = 37.
  EXPECT_EQ(conv.flops(in), 256u * 37u);
}

// ------------------------------------------------------------------- pool

TEST(Pool, MaxHandCase) {
  PoolLayer pool("p", {.kernel = 2, .stride = 2, .pad = 0}, false);
  Tensor in(Shape{1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 7});
  const Tensor* ins[] = {&in};
  Tensor out = pool.forward(ins);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2}));
  EXPECT_EQ(out[0], 5.0f);
  EXPECT_EQ(out[1], 8.0f);
}

TEST(Pool, AvgIncludesPaddingInDenominator) {
  // Caffe's average pooling divides by the full kernel area.
  PoolLayer pool("p", {.kernel = 2, .stride = 2, .pad = 0}, true);
  Tensor in(Shape{1, 2, 2}, {2, 4, 6, 8});
  const Tensor* ins[] = {&in};
  EXPECT_EQ(pool.forward(ins)[0], 5.0f);
}

TEST(Pool, CeilModeShapes) {
  // GoogLeNet's pyramid relies on ceil rounding: 112 → 56 → 28 → 14 → 7.
  PoolLayer pool("p", {.kernel = 3, .stride = 2, .pad = 0}, false);
  for (auto [in, expected] :
       {std::pair{112L, 56L}, {56L, 28L}, {28L, 14L}, {14L, 7L}}) {
    Shape s[] = {Shape{1, in, in}};
    EXPECT_EQ(pool.output_shape(s)[1], expected) << in;
  }
}

TEST(Pool, NegativeInputsSurviveMax) {
  PoolLayer pool("p", {.kernel = 2, .stride = 2, .pad = 0}, false);
  Tensor in(Shape{1, 2, 2}, {-5, -2, -9, -3});
  const Tensor* ins[] = {&in};
  EXPECT_EQ(pool.forward(ins)[0], -2.0f);
}

// --------------------------------------------------------------------- fc

TEST(FullyConnected, HandCase) {
  nn::ScopedKernelBackend fp32(fp32_backend());
  FullyConnectedLayer fc("f", 3, 2);
  // Row 0: [1,2,3] bias 1; row 1: [0,0,1] bias -1.
  auto params = std::vector<float>{1, 2, 3, 0, 0, 1};
  util::BinaryWriter w;
  for (float v : params) w.f32(v);
  w.f32(1.0f);
  w.f32(-1.0f);
  util::Bytes blob = std::move(w).take();
  util::BinaryReader r{std::span<const std::uint8_t>(blob)};
  fc.read_params(r);
  Tensor in(Shape{3}, {1, 1, 1});
  const Tensor* ins[] = {&in};
  Tensor out = fc.forward(ins);
  EXPECT_EQ(out[0], 7.0f);
  EXPECT_EQ(out[1], 0.0f);
}

TEST(FullyConnected, FlattensSpatialInput) {
  FullyConnectedLayer fc("f", 8, 2);
  Shape in[] = {Shape{2, 2, 2}};
  EXPECT_EQ(fc.output_shape(in), (Shape{2}));
  Shape bad[] = {Shape{9}};
  EXPECT_THROW(fc.output_shape(bad), std::invalid_argument);
}

// ------------------------------------------------------------ activations

TEST(Activation, Relu) {
  ReluLayer relu("r");
  Tensor in(Shape{4}, {-1, 0, 2, -3});
  const Tensor* ins[] = {&in};
  Tensor out = relu.forward(ins);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[2], 2.0f);
  EXPECT_EQ(out[3], 0.0f);
}

TEST(Activation, SoftmaxSumsToOne) {
  SoftmaxLayer sm("s");
  Tensor in(Shape{4}, {1, 2, 3, 4});
  const Tensor* ins[] = {&in};
  Tensor out = sm.forward(ins);
  float sum = 0;
  for (float v : out.data()) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(out[3], out[0]);
}

TEST(Activation, SoftmaxNumericallyStable) {
  SoftmaxLayer sm("s");
  Tensor in(Shape{3}, {1000.0f, 1000.0f, 999.0f});
  const Tensor* ins[] = {&in};
  Tensor out = sm.forward(ins);
  EXPECT_FALSE(std::isnan(out[0]));
  EXPECT_NEAR(out[0], out[1], 1e-6f);
}

TEST(Activation, DropoutIsIdentityAtInference) {
  DropoutLayer drop("d", 0.5);
  Tensor in(Shape{3}, {1, 2, 3});
  const Tensor* ins[] = {&in};
  EXPECT_EQ(Tensor::max_abs_diff(drop.forward(ins), in), 0.0f);
  Shape s[] = {Shape{3}};
  EXPECT_EQ(drop.flops(s), 0u);
}

TEST(Lrn, NormalizesDownLargeActivations) {
  LrnLayer lrn("n", LrnConfig{});
  Tensor in = Tensor::full(Shape{8, 2, 2}, 10.0f);
  const Tensor* ins[] = {&in};
  Tensor out = lrn.forward(ins);
  // (k + alpha/n * sum(sq))^beta > 1, so outputs shrink.
  EXPECT_LT(out[0], 10.0f);
  EXPECT_GT(out[0], 0.0f);
}

TEST(Concat, JoinsChannels) {
  ConcatLayer cat("c");
  Tensor a = Tensor::full(Shape{2, 2, 2}, 1.0f);
  Tensor b = Tensor::full(Shape{3, 2, 2}, 2.0f);
  const Tensor* ins[] = {&a, &b};
  Tensor out = cat.forward(ins);
  EXPECT_EQ(out.shape(), (Shape{5, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0), 1.0f);
  EXPECT_EQ(out.at(2, 0, 0), 2.0f);
}

TEST(Concat, RejectsSpatialMismatch) {
  ConcatLayer cat("c");
  Shape bad[] = {Shape{2, 2, 2}, Shape{2, 3, 3}};
  EXPECT_THROW(cat.output_shape(bad), std::invalid_argument);
  Shape one[] = {Shape{2, 2, 2}};
  EXPECT_THROW(cat.output_shape(one), std::invalid_argument);
}

// ---------------------------------------------------------------- network

TEST(Network, BuildErrors) {
  Network net("t");
  EXPECT_THROW(net.add(std::make_unique<ReluLayer>("r")),
               std::invalid_argument);  // first node must be input
  net.add(std::make_unique<InputLayer>("in", Shape{1, 4, 4}));
  EXPECT_THROW(net.add(std::make_unique<InputLayer>("in", Shape{1, 4, 4})),
               std::invalid_argument);  // duplicate name
  EXPECT_THROW(net.add(std::make_unique<ReluLayer>("r"), {"nope"}),
               std::out_of_range);  // unknown input
  // Shape errors roll the node back.
  EXPECT_THROW(
      net.add(std::make_unique<ConvLayer>(
          "c", ConvConfig{.in_channels = 9, .out_channels = 1, .kernel = 1,
                          .stride = 1, .pad = 0})),
      std::invalid_argument);
  EXPECT_FALSE(net.has_layer("c"));
  EXPECT_EQ(net.size(), 1u);
}

TEST(Network, ForwardMatchesManualComposition) {
  auto net = build_tiny_cnn(21);
  util::Pcg32 rng(4);
  Tensor in = Tensor::random_uniform(Shape{3, 32, 32}, rng, 0.0f, 1.0f);
  auto full = net->forward(in);
  // front/rear composition at every cut point reproduces the full output.
  for (std::size_t cut : net->cut_points()) {
    if (cut + 1 >= net->size()) continue;
    Tensor feature = net->forward_front(in, cut);
    Tensor out = net->forward_rear(feature, cut);
    EXPECT_EQ(Tensor::max_abs_diff(out, full.output), 0.0f) << "cut=" << cut;
  }
}

TEST(Network, CutPointsOnChainAreEverywhere) {
  auto net = build_tiny_cnn(21);
  // A pure chain: every node is a cut point.
  EXPECT_EQ(net->cut_points().size(), net->size());
}

TEST(Network, CutPointsSkipInceptionBranches) {
  auto net = build_googlenet(7);
  auto cuts = net->cut_points();
  // Cut points exist (trunk) but are far fewer than nodes (branches are
  // not valid cuts).
  EXPECT_GT(cuts.size(), 10u);
  EXPECT_LT(cuts.size(), net->size() / 2);
  // No branch-internal conv (e.g. inc3a_3x3r) may be a cut point.
  std::size_t branch_node = net->index_of("inc3a_3x3r");
  for (auto c : cuts) EXPECT_NE(c, branch_node);
  // Inception outputs are cut points.
  std::size_t inc_out = net->index_of("inc3a_out");
  EXPECT_NE(std::find(cuts.begin(), cuts.end(), inc_out), cuts.end());
}

TEST(Network, AnalyzeShapesAndFlops) {
  auto net = build_tiny_cnn(21);
  const auto& a = net->analyze();
  EXPECT_EQ(a.shapes.size(), net->size());
  EXPECT_EQ(a.shapes[0], (Shape{3, 32, 32}));
  EXPECT_EQ(a.shapes.back(), (Shape{10}));
  EXPECT_GT(a.total_flops, 1'000'000u);
  // analyze is consistent with a real forward.
  util::Pcg32 rng(4);
  Tensor in = Tensor::random_uniform(Shape{3, 32, 32}, rng, 0.0f, 1.0f);
  auto fwd = net->forward(in);
  for (std::size_t i = 0; i < net->size(); ++i) {
    EXPECT_EQ(fwd.output_bytes[i], a.output_bytes[i]) << i;
  }
}

TEST(Network, ForwardRearRejectsBadFeature) {
  auto net = build_tiny_cnn(21);
  Tensor bad(Shape{7});
  EXPECT_THROW(net->forward_rear(bad, 2), std::invalid_argument);
  EXPECT_THROW(net->forward_rear(bad, net->size() - 1), std::out_of_range);
}

// ----------------------------------------------------------------- models

TEST(Models, GoogLeNetMatchesPaperSizes) {
  auto net = build_googlenet(7);
  // ~7.0M parameters ≈ 27 MB fp32 (Table 1's GoogLeNet model size).
  double mb = static_cast<double>(net->param_bytes()) / 1e6;
  EXPECT_GT(mb, 24.0);
  EXPECT_LT(mb, 30.0);
  const auto& a = net->analyze();
  // Fig. 1's published feature dims.
  EXPECT_EQ(a.shapes[net->index_of("conv1")], (Shape{64, 112, 112}));
  EXPECT_EQ(a.shapes[net->index_of("pool1")], (Shape{64, 56, 56}));
  EXPECT_EQ(a.shapes[net->index_of("inc3a_out")], (Shape{256, 28, 28}));
  EXPECT_EQ(a.shapes[net->index_of("inc3b_out")], (Shape{480, 28, 28}));
  EXPECT_EQ(a.shapes[net->index_of("inc4e_out")], (Shape{832, 14, 14}));
  EXPECT_EQ(a.shapes[net->index_of("inc5b_out")], (Shape{1024, 7, 7}));
  EXPECT_EQ(a.shapes[net->index_of("pool5")], (Shape{1024, 1, 1}));
  EXPECT_EQ(a.shapes.back(), (Shape{1000}));
  // ~3 GFLOPs per forward.
  EXPECT_GT(a.total_flops, 2'000'000'000u);
  EXPECT_LT(a.total_flops, 5'000'000'000u);
}

TEST(Models, AgeGenderNetsMatchPaperSizes) {
  auto age = build_agenet(11);
  auto gender = build_gendernet(13);
  // Table 1: 44 MB for both (they differ only in the last fc layer).
  double age_mb = static_cast<double>(age->param_bytes()) / 1e6;
  double gender_mb = static_cast<double>(gender->param_bytes()) / 1e6;
  EXPECT_GT(age_mb, 40.0);
  EXPECT_LT(age_mb, 48.0);
  EXPECT_NEAR(age_mb, gender_mb, 0.1);
  EXPECT_EQ(age->analyze().shapes.back(), (Shape{8}));
  EXPECT_EQ(gender->analyze().shapes.back(), (Shape{2}));
  // Levi–Hassner: conv1 56x56x96 after 7x7/4 on 227.
  EXPECT_EQ(age->analyze().shapes[age->index_of("conv1")],
            (Shape{96, 56, 56}));
}

TEST(Models, WeightInitIsDeterministicPerSeed) {
  auto a = build_tiny_cnn(5);
  auto b = build_tiny_cnn(5);
  auto c = build_tiny_cnn(6);
  util::Pcg32 rng(1);
  Tensor in = Tensor::random_uniform(Shape{3, 32, 32}, rng, 0.0f, 1.0f);
  EXPECT_EQ(Tensor::max_abs_diff(a->forward(in).output, b->forward(in).output),
            0.0f);
  EXPECT_NE(Tensor::max_abs_diff(a->forward(in).output, c->forward(in).output),
            0.0f);
}

TEST(Models, ForwardOutputsAreFiniteProbabilities) {
  auto net = build_tiny_cnn(17);
  util::Pcg32 rng(2);
  Tensor in = Tensor::random_uniform(Shape{3, 32, 32}, rng, 0.0f, 1.0f);
  Tensor out = net->forward(in).output;
  float sum = 0;
  for (float v : out.data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

// --------------------------------------------------------------- model_io

TEST(ModelIo, DescriptionRoundTrip) {
  auto net = build_googlenet(7);
  std::string desc = save_description(*net);
  auto parsed = parse_description(desc);
  EXPECT_EQ(parsed->name(), net->name());
  EXPECT_EQ(parsed->size(), net->size());
  EXPECT_EQ(save_description(*parsed), desc);
  EXPECT_EQ(parsed->analyze().total_flops, net->analyze().total_flops);
}

TEST(ModelIo, WeightsRoundTripBitExact) {
  auto net = build_tiny_cnn(23);
  auto files = model_files(*net);
  ASSERT_EQ(files.size(), 2u);
  auto rebuilt =
      parse_description(util::to_string(std::span(files[0].content)));
  load_weights(*rebuilt, std::span(files[1].content));
  util::Pcg32 rng(9);
  Tensor in = Tensor::random_uniform(Shape{3, 32, 32}, rng, 0.0f, 1.0f);
  EXPECT_EQ(Tensor::max_abs_diff(net->forward(in).output,
                                 rebuilt->forward(in).output),
            0.0f);
}

TEST(ModelIo, RearOnlySplit) {
  auto net = build_tiny_cnn(23);
  std::size_t cut = 2;  // after pool1
  auto rear_files = model_files_rear_only(*net, cut);
  // Rear bundle is smaller than the full bundle.
  EXPECT_LT(total_size(rear_files), total_size(model_files(*net)));
  auto rebuilt =
      parse_description(util::to_string(std::span(rear_files[0].content)));
  load_weights(*rebuilt, std::span(rear_files[1].content));
  // Rear execution matches (front weights irrelevant for the rear range).
  util::Pcg32 rng(9);
  Tensor in = Tensor::random_uniform(Shape{3, 32, 32}, rng, 0.0f, 1.0f);
  Tensor feature = net->forward_front(in, cut);
  EXPECT_EQ(Tensor::max_abs_diff(net->forward_rear(feature, cut),
                                 rebuilt->forward_rear(feature, cut)),
            0.0f);
  // But the rebuilt front differs (weights withheld → zeros).
  EXPECT_NE(Tensor::max_abs_diff(net->forward_front(in, cut),
                                 rebuilt->forward_front(in, cut)),
            0.0f);
}

TEST(ModelIo, MalformedDescriptionThrows) {
  EXPECT_THROW(parse_description(""), util::DecodeError);
  EXPECT_THROW(parse_description("layer x conv\n"), util::DecodeError);
  EXPECT_THROW(parse_description("model m\nlayer a bogus\n"),
               util::DecodeError);
  EXPECT_THROW(parse_description("model m\nlayer a conv in=1\n"),
               util::DecodeError);
}

TEST(ModelIo, WeightsWrongNetworkThrows) {
  auto a = build_tiny_cnn(1);
  auto g = build_gendernet(2);
  auto blob = save_weights(*a);
  EXPECT_THROW(load_weights(*g, std::span(blob)), std::exception);
}

}  // namespace
}  // namespace offload::nn
