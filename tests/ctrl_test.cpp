// Tests for the online partition-point controller (src/ctrl): policy
// parsing and env knobs, bit-determinism of decisions, drift-correction
// learning, failure-escalation re-cuts, and the end-to-end integration
// with the client supervisor (re-cut on stall, adaptation to bandwidth
// collapse, byte-identical repeated runs, and the static-policy
// equivalence with the paper reproduction).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/core/offload.h"
#include "src/ctrl/controller.h"

namespace offload::core {
namespace {

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

std::shared_ptr<const nn::Network> tiny_net() {
  return std::shared_ptr<const nn::Network>(nn::build_tiny_cnn_default(17));
}

// A client so slow that offloading TinyCNN clearly wins at 30 Mbps — the
// stock embedded profile runs the tiny test net faster locally, which
// would make every remote-vs-local assertion degenerate.
nn::DeviceProfile crippled_client() {
  nn::DeviceProfile profile = nn::DeviceProfile::embedded_client();
  for (double& gflops : profile.gflops) gflops /= 100.0;
  return profile;
}

ctrl::CutController make_controller(ctrl::ControllerConfig config,
                                    std::shared_ptr<const nn::Network> net,
                                    const nn::DeviceProfile& client_profile =
                                        nn::DeviceProfile::embedded_client()) {
  const nn::Network* nets[] = {net.get()};
  auto client = nn::LayerCostModel::profile_device(client_profile, nets);
  auto server = nn::LayerCostModel::profile_device(
      nn::DeviceProfile::edge_server(), nets);
  return ctrl::CutController(config, std::move(net), std::move(client),
                             std::move(server));
}

// Partial-inference app under supervision with an adaptive policy — the
// controller's production configuration.
core::RuntimeConfig adaptive_config(const edge::AppBundle& bundle,
                                    ctrl::PolicyKind policy) {
  core::RuntimeConfig config;
  config.client.partition_cut = core::first_pool_cut(*bundle.network);
  config.client.offload_event = "front_complete";
  config.client.supervisor.enabled = true;
  config.client.controller.policy = policy;
  config.client.controller.ignore_env = true;
  config.click_at = core::after_ack_click_time(
      *bundle.network, false, config.client.partition_cut, 30e6);
  return config;
}

// ---------------------------------------------------------------------------
// Policy + config

TEST(CtrlConfig, ParsePolicyRoundTrips) {
  EXPECT_EQ(ctrl::parse_policy("static"), ctrl::PolicyKind::kStatic);
  EXPECT_EQ(ctrl::parse_policy("drift"), ctrl::PolicyKind::kDrift);
  EXPECT_EQ(ctrl::parse_policy("bandit"), ctrl::PolicyKind::kBandit);
  EXPECT_STREQ(ctrl::policy_name(ctrl::PolicyKind::kDrift), "drift");
  EXPECT_THROW(ctrl::parse_policy("adaptive"), std::invalid_argument);
}

TEST(CtrlConfig, AppliesEnvKnobs) {
  ::setenv("OFFLOAD_CTRL", "bandit", 1);
  ::setenv("OFFLOAD_CTRL_SEED", "99", 1);
  ctrl::ControllerConfig config;
  config.apply_env();
  EXPECT_EQ(config.policy, ctrl::PolicyKind::kBandit);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_TRUE(config.active());

  ctrl::ControllerConfig pinned;
  pinned.ignore_env = true;
  pinned.apply_env();
  EXPECT_EQ(pinned.policy, ctrl::PolicyKind::kStatic);
  EXPECT_EQ(pinned.seed, 1u);
  EXPECT_FALSE(pinned.active());

  ::setenv("OFFLOAD_CTRL", "bogus", 1);
  ctrl::ControllerConfig bad;
  EXPECT_THROW(bad.apply_env(), std::invalid_argument);
  ::unsetenv("OFFLOAD_CTRL");
  ::unsetenv("OFFLOAD_CTRL_SEED");
}

// ---------------------------------------------------------------------------
// CutController unit behavior

TEST(CutController, ArmsMirrorLabeledCutPointsPlusLocal) {
  auto net = tiny_net();
  ctrl::ControllerConfig config;
  config.policy = ctrl::PolicyKind::kDrift;
  auto controller = make_controller(config, net);

  std::vector<core::CutLabel> labels = core::labeled_cut_points(*net);
  const auto& arms = controller.arms();
  ASSERT_EQ(arms.size(), labels.size() + 1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(arms[i], labels[i].cut);
  }
  EXPECT_EQ(arms.back(), net->size() - 1);  // the full-local arm
}

TEST(CutController, DecisionsAreBitDeterministic) {
  auto net = tiny_net();
  for (auto policy :
       {ctrl::PolicyKind::kDrift, ctrl::PolicyKind::kBandit}) {
    ctrl::ControllerConfig config;
    config.policy = policy;
    config.seed = 7;
    auto a = make_controller(config, net);
    auto b = make_controller(config, net);
    ctrl::LinkSignals signals;
    signals.bandwidth_bps = 30e6;
    for (int i = 0; i < 50; ++i) {
      signals.queue_depth = static_cast<std::size_t>(i % 5);
      ctrl::Decision da = a.decide(0, signals);
      ctrl::Decision db = b.decide(0, signals);
      ASSERT_EQ(da.cut, db.cut) << "policy " << ctrl::policy_name(policy)
                                << " diverged at step " << i;
      ASSERT_EQ(da.arm, db.arm);
      ASSERT_EQ(da.local, db.local);
      ASSERT_EQ(da.predicted_s, db.predicted_s);  // bit-exact
      // Identical synthetic feedback on both sides.
      ctrl::Outcome o;
      o.server = 0;
      o.arm = da.arm;
      o.local = da.local;
      o.ok = (i % 7) != 3;
      o.observed_s = da.predicted_s * (1.0 + 0.1 * (i % 4));
      o.predicted_s = da.predicted_s;
      a.record(o);
      b.record(o);
    }
    EXPECT_EQ(a.decisions(), 50u);
    EXPECT_EQ(a.outcomes(), 50u);
  }
}

TEST(CutController, DriftCorrectionLearnsFromObservations) {
  auto net = tiny_net();
  ctrl::ControllerConfig config;
  config.policy = ctrl::PolicyKind::kDrift;
  auto controller = make_controller(config, net, crippled_client());
  ctrl::LinkSignals signals;
  signals.bandwidth_bps = 30e6;

  ctrl::Decision first = controller.decide(0, signals);
  ASSERT_FALSE(first.local);
  // The chosen cut consistently runs 6x slower than predicted (drifted
  // server): its correction factor must rise and the choice must move.
  std::size_t moved_at = 0;
  for (int i = 1; i <= 20; ++i) {
    ctrl::Decision d = controller.decide(0, signals);
    ctrl::Outcome o;
    o.server = 0;
    o.arm = d.arm;
    o.local = d.local;
    o.ok = true;
    o.observed_s = d.predicted_s * (d.arm == first.arm ? 6.0 : 1.0);
    o.predicted_s = d.predicted_s;
    controller.record(o);
    if (moved_at == 0 && d.arm != first.arm) moved_at = i;
  }
  EXPECT_GT(controller.correction(0, first.arm), 1.5);
  EXPECT_NE(moved_at, 0u) << "decision never moved off the drifted arm";
}

TEST(CutController, FailureEscalationWalksTowardLocal) {
  auto net = tiny_net();
  ctrl::ControllerConfig config;
  config.policy = ctrl::PolicyKind::kDrift;
  auto controller = make_controller(config, net, crippled_client());
  ctrl::LinkSignals slow;
  slow.bandwidth_bps = 1e6;  // constrained uplink

  ctrl::Decision fresh = controller.decide(0, slow);
  ctrl::Decision desperate = controller.redecide(0, slow, 6);
  // 2^6 = 64x on every network term prices out any remote cut.
  EXPECT_TRUE(desperate.local);
  EXPECT_EQ(desperate.cut, net->size() - 1);
  // And a fresh decision is not already local (the escalation did it).
  EXPECT_FALSE(fresh.local);
}

TEST(CutController, BanditSeedIsMeaningful) {
  auto net = tiny_net();
  ctrl::ControllerConfig config;
  config.policy = ctrl::PolicyKind::kBandit;
  config.explore_eps = 0.3;  // high exploration to expose the stream
  config.seed = 1;
  auto a = make_controller(config, net);
  config.seed = 2;
  auto b = make_controller(config, net);
  ctrl::LinkSignals signals;
  signals.bandwidth_bps = 30e6;
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    diverged = a.decide(0, signals).arm != b.decide(0, signals).arm;
  }
  EXPECT_TRUE(diverged) << "seeds 1 and 2 explored identically";
}

TEST(CutController, BanditMovesOffAFailingArm) {
  auto net = tiny_net();
  ctrl::ControllerConfig config;
  config.policy = ctrl::PolicyKind::kBandit;
  config.explore_eps = 0;  // pure UCB for a deterministic assertion
  auto controller = make_controller(config, net);
  ctrl::LinkSignals signals;
  signals.bandwidth_bps = 30e6;

  ctrl::Decision first = controller.decide(0, signals);
  int on_first = 0;
  for (int i = 0; i < 30; ++i) {
    ctrl::Decision d = controller.decide(0, signals);
    if (d.arm == first.arm) ++on_first;
    ctrl::Outcome o;
    o.server = 0;
    o.arm = d.arm;
    o.local = d.local;
    o.ok = d.arm != first.arm;  // the initially-best arm keeps failing
    o.observed_s = d.predicted_s;
    o.predicted_s = d.predicted_s;
    controller.record(o);
  }
  // Failures are penalized; the bandit must abandon the failing arm for
  // most of the run.
  EXPECT_LT(on_first, 10);
}

// ---------------------------------------------------------------------------
// End-to-end integration

TEST(CtrlIntegration, StaticPolicyMatchesBaselineBitForBit) {
  edge::AppBundle baseline_bundle = make_benchmark_app(tiny_model(), true);
  core::RuntimeConfig baseline =
      adaptive_config(baseline_bundle, ctrl::PolicyKind::kStatic);
  core::OffloadingRuntime baseline_rt(baseline, std::move(baseline_bundle));
  core::RunResult a = baseline_rt.run();
  EXPECT_EQ(baseline_rt.client().cut_controller(), nullptr);

  edge::AppBundle bundle = make_benchmark_app(tiny_model(), true);
  core::RuntimeConfig config =
      adaptive_config(bundle, ctrl::PolicyKind::kStatic);
  core::OffloadingRuntime runtime(config, std::move(bundle));
  core::RunResult b = runtime.run();

  EXPECT_EQ(a.inference_seconds, b.inference_seconds);  // bit-exact
  EXPECT_EQ(a.timeline.used_partition_cut, b.timeline.used_partition_cut);
  EXPECT_EQ(a.result_text, b.result_text);
}

TEST(CtrlIntegration, DriftPolicyDecidesEveryInference) {
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), true);
  core::RuntimeConfig config =
      adaptive_config(bundle, ctrl::PolicyKind::kDrift);
  core::OffloadingRuntime runtime(config, std::move(bundle));
  core::RunResult result = runtime.run();
  EXPECT_GE(result.inference_seconds, 0.0);
  for (int i = 0; i < 2; ++i) {
    runtime.client().click_at(runtime.simulation().now() +
                              sim::SimTime::seconds(1));
    runtime.simulation().run();
    ASSERT_TRUE(runtime.client().finished());
  }
  const ctrl::CutController* controller = runtime.client().cut_controller();
  ASSERT_NE(controller, nullptr);
  EXPECT_EQ(controller->decisions(), 3u);
  EXPECT_EQ(controller->outcomes(), 3u);
  EXPECT_EQ(runtime.obs().metrics.counter("ctrl.decisions"), 3u);
  // Every used cut is one of the controller's arms.
  std::size_t cut = runtime.client().timeline().used_partition_cut;
  bool known = false;
  for (std::size_t arm : controller->arms()) known |= (arm == cut);
  EXPECT_TRUE(known);
}

TEST(CtrlIntegration, AdaptiveRunsAreDeterministic) {
  for (auto policy :
       {ctrl::PolicyKind::kDrift, ctrl::PolicyKind::kBandit}) {
    std::vector<double> latencies[2];
    std::vector<std::size_t> cuts[2];
    for (int run = 0; run < 2; ++run) {
      edge::AppBundle bundle = make_benchmark_app(tiny_model(), true);
      core::RuntimeConfig config = adaptive_config(bundle, policy);
      core::OffloadingRuntime runtime(config, std::move(bundle));
      runtime.run();
      for (int i = 0; i < 3; ++i) {
        runtime.client().click_at(runtime.simulation().now() +
                                  sim::SimTime::seconds(1));
        runtime.simulation().run();
      }
      for (const auto& t : runtime.client().history()) {
        latencies[run].push_back(t.inference_seconds());
        cuts[run].push_back(t.used_partition_cut);
      }
      latencies[run].push_back(
          runtime.client().timeline().inference_seconds());
      cuts[run].push_back(
          runtime.client().timeline().used_partition_cut);
    }
    EXPECT_EQ(latencies[0], latencies[1])
        << "policy " << ctrl::policy_name(policy);
    EXPECT_EQ(cuts[0], cuts[1]) << "policy " << ctrl::policy_name(policy);
  }
}

TEST(CtrlIntegration, BandwidthCollapseMovesTheCut) {
  // 30 Mbps at the first click; the uplink then collapses to 300 kbps.
  // The per-attempt bandwidth observations must steer later decisions to
  // a cheaper split (deeper cut or full-local) — the whole point of the
  // controller.
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), true);
  core::RuntimeConfig config =
      adaptive_config(bundle, ctrl::PolicyKind::kDrift);
  core::OffloadingRuntime runtime(config, std::move(bundle));
  core::RunResult first = runtime.run();
  std::size_t first_cut = first.timeline.used_partition_cut;

  runtime.client_link().channels[0]->link_a_to_b().set_bandwidth_bps(3e5);
  for (int i = 0; i < 4; ++i) {
    runtime.client().click_at(runtime.simulation().now() +
                              sim::SimTime::seconds(5));
    runtime.simulation().run();
    ASSERT_TRUE(runtime.client().finished());
  }
  const edge::ClientTimeline& last = runtime.client().timeline();
  EXPECT_TRUE(last.used_partition_cut != first_cut || last.local_fallback)
      << "controller never adapted to the collapsed uplink";
}

TEST(CtrlIntegration, StallTriggersRecutOrLocalFallback) {
  // The server stalls right across the upload: the supervisor's deadline
  // fires, and instead of blindly retrying the same bytes the controller
  // re-decides (deeper cut, or local when everything is priced out).
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), true);
  core::RuntimeConfig config =
      adaptive_config(bundle, ctrl::PolicyKind::kDrift);
  config.client.supervisor.upload_deadline = sim::SimTime::millis(500);
  sim::SimTime click = config.click_at;
  core::OffloadingRuntime runtime(config, std::move(bundle));
  runtime.server().schedule_stall(click - sim::SimTime::millis(1),
                                  sim::SimTime::seconds(20));
  core::RunResult result = runtime.run();
  EXPECT_GE(result.inference_seconds, 0.0);
  // The inference must have either re-cut mid-flight or fallen back
  // locally under controller guidance — never hang.
  const auto& m = runtime.obs().metrics;
  EXPECT_GE(m.counter("ctrl.recuts") + m.counter("ctrl.recuts_local") +
                (result.timeline.local_fallback ? 1u : 0u),
            1u);
  const ctrl::CutController* controller = runtime.client().cut_controller();
  ASSERT_NE(controller, nullptr);
  EXPECT_EQ(controller->outcomes(), controller->decisions());
}

}  // namespace
}  // namespace offload::core
