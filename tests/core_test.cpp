// Unit tests for the core layer: app source factories, cut-point labeling,
// scenario plumbing, and breakdown bookkeeping.
#include <gtest/gtest.h>

#include "src/core/offload.h"

namespace offload::core {
namespace {

TEST(AppFactory, FullAppParsesAndBuildsDom) {
  jsvm::Interpreter interp;
  // The app calls loadModel/loadImage, which need a host; stub them.
  interp.set_global("loadModel",
                    interp.register_native(
                        "test.loadModel",
                        [](jsvm::Interpreter&, const jsvm::Value&,
                           std::span<jsvm::Value>) -> jsvm::Value {
                          return std::make_shared<jsvm::Object>();
                        }));
  interp.set_global("loadImage",
                    interp.register_native(
                        "test.loadImage",
                        [](jsvm::Interpreter&, const jsvm::Value&,
                           std::span<jsvm::Value>) -> jsvm::Value {
                          auto ta = std::make_shared<jsvm::TypedArray>();
                          ta->data = {1, 2, 3};
                          return ta;
                        }));
  interp.eval_program(full_inference_app_source("m"));
  interp.run_events();  // the app clicks #load at startup
  EXPECT_NE(interp.document().get_element_by_id("btn"), nullptr);
  EXPECT_NE(interp.document().get_element_by_id("result"), nullptr);
  EXPECT_NE(interp.document().get_element_by_id("canvas"), nullptr);
  // The load click put the image on the canvas.
  EXPECT_NE(interp.document().get_element_by_id("canvas")->canvas_data,
            nullptr);
}

TEST(AppFactory, InputImageLooksLikeCanvasPixels) {
  nn::Tensor img = make_input_image(16, 3);
  EXPECT_EQ(img.shape(), (nn::Shape{3, 16, 16}));
  for (float v : img.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 255.0f);
    EXPECT_EQ(v, std::floor(v));  // integer byte values
  }
  // Deterministic per seed.
  EXPECT_EQ(nn::Tensor::max_abs_diff(img, make_input_image(16, 3)), 0.0f);
  EXPECT_NE(nn::Tensor::max_abs_diff(img, make_input_image(16, 4)), 0.0f);
}

TEST(AppFactory, BundleNamesFollowNetwork) {
  nn::BenchmarkModel tiny{"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
  edge::AppBundle full = make_benchmark_app(tiny, false);
  EXPECT_EQ(full.name, "tinycnn");
  EXPECT_NE(full.source.find("loadModel(\"tinycnn\")"), std::string::npos);
  edge::AppBundle partial = make_benchmark_app(tiny, true);
  EXPECT_NE(partial.source.find("inference_front"), std::string::npos);
  EXPECT_NE(partial.source.find("front_complete"), std::string::npos);
}

TEST(CutLabels, OrdinalsAndKinds) {
  auto net = nn::build_agenet(11);
  auto labels = labeled_cut_points(*net);
  ASSERT_GE(labels.size(), 7u);
  EXPECT_EQ(labels[0].label, "input");
  EXPECT_EQ(labels[1].label, "1st_conv");
  EXPECT_EQ(labels[2].label, "1st_pool");
  EXPECT_EQ(labels[3].label, "2nd_conv");
  EXPECT_EQ(labels[4].label, "2nd_pool");
  // Labels refer to real layers of the right kind.
  for (const auto& l : labels) {
    EXPECT_EQ(net->layer(l.cut).kind(), l.kind) << l.label;
  }
}

TEST(CutLabels, FirstPoolIsThePapersPoint) {
  auto net = nn::build_googlenet(7);
  std::size_t cut = first_pool_cut(*net);
  EXPECT_EQ(net->layer(cut).name(), "pool1");
}

TEST(Scenario, NamesAreStable) {
  EXPECT_STREQ(scenario_name(Scenario::kClientOnly), "Client");
  EXPECT_STREQ(scenario_name(Scenario::kServerOnly), "Server");
  EXPECT_STREQ(scenario_name(Scenario::kOffloadAfterAck),
               "Offload (after ACK)");
}

TEST(Scenario, AfterAckClickTimeCoversTheUpload) {
  auto net = nn::build_agenet(11);
  double bw = 30e6;
  sim::SimTime t = after_ack_click_time(*net, false, 0, bw);
  double transfer_s =
      static_cast<double>(nn::total_size(nn::model_files(*net))) * 8.0 / bw;
  EXPECT_GT(t.to_seconds(), transfer_s);
  EXPECT_LT(t.to_seconds(), transfer_s + 10.0);
}

TEST(Breakdown, LabelsMatchValues) {
  InferenceBreakdown b;
  b.dnn_execution_client = 1;
  b.transmission_up = 2;
  b.other = 0.5;
  EXPECT_EQ(InferenceBreakdown::labels().size(), b.values().size());
  EXPECT_DOUBLE_EQ(b.total(), 3.5);
}

TEST(Runtime, ServerOnlyBaselineUsesServerProfile) {
  auto net = nn::build_tiny_cnn(17);
  double server_s = server_only_inference_seconds(
      *net, nn::DeviceProfile::edge_server());
  double client_s = server_only_inference_seconds(
      *net, nn::DeviceProfile::embedded_client());
  EXPECT_GT(client_s, 10 * server_s);
  double gpu_s = server_only_inference_seconds(
      *net, nn::DeviceProfile::edge_server_gpu());
  EXPECT_LT(gpu_s, server_s);
}

TEST(Runtime, PartialScenarioPicksFirstPoolByDefault) {
  nn::BenchmarkModel tiny{"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
  RunResult r = run_scenario(tiny, Scenario::kOffloadPartial);
  auto net = nn::build_tiny_cnn(17);
  EXPECT_EQ(r.timeline.used_partition_cut, first_pool_cut(*net));
}

}  // namespace
}  // namespace offload::core
