// Golden-trace regression for the deterministic tracing layer (src/obs).
//
// One fixed-seed faulted + supervised end-to-end run is traced and its
// JSONL export (plus the metrics dump) compared byte-for-byte against
// checked-in goldens. The same run is repeated at OFFLOAD_THREADS=1 and 4
// and must produce identical bytes: worker threads only parallelize inside
// NN kernels and never touch the tracer.
//
// Regenerate the goldens after an intentional trace-schema change with
//   OFFLOAD_UPDATE_GOLDEN=1 ctest -R Obs
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/offload.h"
#include "src/core/trace_breakdown.h"
#include "src/nn/kernels.h"
#include "src/obs/export.h"
#include "src/obs/obs.h"
#include "src/util/thread_pool.h"

#ifndef OBS_GOLDEN_DIR
#error "OBS_GOLDEN_DIR must point at the golden-trace directory"
#endif

namespace offload::core {
namespace {

struct PoolGuard {
  ~PoolGuard() { util::set_default_pool_threads(0); }
};

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

/// The pinned scenario: supervised client, secondary server, 8% uniform
/// message faults (seed 23) and one primary crash shortly after the click.
/// Exercises retries, backoff, failover, crash recovery, and both
/// transmit directions — nearly every span kind in one trace stream.
void run_faulted_scenario(obs::Obs& obs) {
  // Goldens are recorded under the default backend: pin it so an ambient
  // OFFLOAD_KERNELS=simd/int8 cannot add kernels.backend attrs or metrics.
  nn::ScopedKernelBackend scoped(nn::KernelBackend::kScalar);
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.client.supervisor.enabled = true;
  config.fleet.spares = 1;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  fault::FaultPlanConfig faults = fault::FaultPlanConfig::uniform(0.08, 23);
  fault::CrashSpec crash;
  crash.first_at = config.click_at + sim::SimTime::millis(2);
  crash.downtime = sim::SimTime::seconds(3);
  faults.crashes.push_back(crash);
  config.faults = faults;
  config.obs = &obs;
  OffloadingRuntime runtime(config, std::move(bundle));
  runtime.run();
}

/// The pinned fleet scenario: two servers behind a p2c balancer with
/// content-addressed pre-send on, three clicks from one supervised client.
/// Routing markers, per-server (fleet/server<k>) spans and gauges, and the
/// dedup counters all land in the golden.
void run_fleet_scenario(obs::Obs& obs) {
  nn::ScopedKernelBackend scoped(nn::KernelBackend::kScalar);
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.fleet.size = 2;
  config.fleet.balancer.policy = "p2c";
  config.fleet.balancer.seed = 5;
  config.fleet.dedup = true;
  config.client.supervisor.enabled = true;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  config.obs = &obs;
  OffloadingRuntime runtime(config, std::move(bundle));
  runtime.client().click_at(config.click_at + sim::SimTime::seconds(4));
  runtime.client().click_at(config.click_at + sim::SimTime::seconds(8));
  runtime.run();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool update_golden() {
  const char* env = std::getenv("OFFLOAD_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

/// Compare `content` against the golden file, or rewrite the golden when
/// OFFLOAD_UPDATE_GOLDEN is set. Byte-for-byte: any drift is a diff.
void check_golden(const std::string& name, const std::string& content) {
  const std::string path = std::string(OBS_GOLDEN_DIR) + "/" + name;
  if (update_golden()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write golden " << path;
    out << content;
    return;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "golden " << path
      << " missing/empty; regenerate with OFFLOAD_UPDATE_GOLDEN=1";
  if (content != expected) {
    // Locate the first differing line for a readable failure.
    std::istringstream got(content), want(expected);
    std::string gline, wline;
    int line = 1;
    while (std::getline(got, gline) && std::getline(want, wline)) {
      ASSERT_EQ(gline, wline) << "first trace divergence at " << name << ":"
                              << line;
      ++line;
    }
    FAIL() << name << " differs from golden in length (got "
           << content.size() << " bytes, want " << expected.size() << ")";
  }
}

TEST(ObsGolden, FaultedTraceMatchesGoldenByteForByte) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  obs::Obs obs;
  run_faulted_scenario(obs);
  ASSERT_GT(obs.trace.size(), 20u);  // the run exercises the span taxonomy
  check_golden("faulted_trace.jsonl", obs::to_jsonl(obs.trace));
  check_golden("faulted_metrics.txt", obs.metrics.dump_text());
}

TEST(ObsGolden, FleetTraceMatchesGoldenByteForByte) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  obs::Obs obs;
  run_fleet_scenario(obs);
  const std::string trace = obs::to_jsonl(obs.trace);
  const std::string metrics = obs.metrics.dump_text();
  // The balanced run actually exercised the fleet machinery.
  EXPECT_NE(trace.find("fleet/balancer"), std::string::npos);
  EXPECT_NE(trace.find("fleet/server0"), std::string::npos);
  EXPECT_NE(metrics.find("fleet.routed."), std::string::npos);
  check_golden("fleet_trace.jsonl", trace);
  check_golden("fleet_metrics.txt", metrics);

  // Same run at OFFLOAD_THREADS=4: byte-identical — routing and dedup sit
  // entirely above the worker pool.
  util::set_default_pool_threads(4);
  obs::Obs threaded;
  run_fleet_scenario(threaded);
  EXPECT_EQ(obs::to_jsonl(threaded.trace), trace);
  EXPECT_EQ(threaded.metrics.dump_text(), metrics);
}

TEST(ObsGolden, TraceIdenticalAcrossThreadCountsAndRuns) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  obs::Obs first;
  run_faulted_scenario(first);
  const std::string trace1 = obs::to_jsonl(first.trace);
  const std::string metrics1 = first.metrics.dump_text();
  const std::string chrome1 = obs::to_chrome_trace(first.trace);

  // Same seed, same thread count: byte-identical.
  obs::Obs rerun;
  run_faulted_scenario(rerun);
  EXPECT_EQ(obs::to_jsonl(rerun.trace), trace1);
  EXPECT_EQ(rerun.metrics.dump_text(), metrics1);

  // Same seed, OFFLOAD_THREADS=4: still byte-identical — parallelism
  // lives inside the NN kernels, below every instrumentation point.
  util::set_default_pool_threads(4);
  obs::Obs threaded;
  run_faulted_scenario(threaded);
  EXPECT_EQ(obs::to_jsonl(threaded.trace), trace1);
  EXPECT_EQ(threaded.metrics.dump_text(), metrics1);
  EXPECT_EQ(obs::to_chrome_trace(threaded.trace), chrome1);
}

TEST(ObsGolden, ChromeTraceIsWellFormed) {
  PoolGuard guard;
  util::set_default_pool_threads(1);
  obs::Obs obs;
  run_faulted_scenario(obs);
  const std::string chrome = obs::to_chrome_trace(obs.trace);
  // Structural smoke checks (full JSON parsing is Perfetto's job): the
  // envelope, per-resource thread metadata, and complete events exist.
  EXPECT_EQ(chrome.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_EQ(chrome.back(), '\n');
  EXPECT_NE(chrome.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(chrome.find("transmit_up"), std::string::npos);
  EXPECT_NE(chrome.find("lane_busy"), std::string::npos);
}

TEST(ObsGolden, DisabledPathLeavesMessagesUntouched) {
  // Without an obs sink the degenerate run stays exactly the old
  // pipeline: no spans anywhere, identical timings (the ±2% overhead
  // acceptance is enforced on bench_fig6_exec_time; this pins behavior).
  RunResult traced;
  {
    obs::Obs obs;
    edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
    RuntimeConfig config;
    config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
    config.obs = &obs;
    OffloadingRuntime runtime(config, std::move(bundle));
    traced = runtime.run();
    EXPECT_GT(obs.trace.size(), 0u);
  }
  RunResult plain = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  EXPECT_EQ(traced.inference_seconds, plain.inference_seconds);
  EXPECT_EQ(traced.timeline.finished->ns(), plain.timeline.finished->ns());
  EXPECT_EQ(traced.result_text, plain.result_text);
  // And the breakdowns agree bit for bit: the external-sink run and the
  // runtime-owned-sink run derive from identical span trees.
  EXPECT_EQ(traced.breakdown.total(), plain.breakdown.total());
  EXPECT_EQ(traced.breakdown.transmission_up, plain.breakdown.transmission_up);
  EXPECT_EQ(traced.breakdown.transmission_down,
            plain.breakdown.transmission_down);
}

}  // namespace
}  // namespace offload::core
