// Unit tests for the util layer: binary codecs, CRC, base64, RNG, stats,
// strings, tables.
#include <gtest/gtest.h>

#include "src/nn/tensor.h"
#include "src/util/aligned.h"
#include "src/util/base64.h"
#include "src/util/bytes.h"
#include "src/util/crc32.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/spsc_mailbox.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"

#include <memory>
#include <thread>

namespace offload::util {
namespace {

TEST(Bytes, WriterReaderRoundTrip) {
  BinaryWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1);
  w.f32(3.14f);
  w.f64(-2.718281828459045);
  w.varint(0);
  w.varint(127);
  w.varint(128);
  w.varint(UINT64_MAX);
  w.str("hello");
  w.blob(as_bytes("blobby"));
  Bytes data = std::move(w).take();

  BinaryReader r{std::span<const std::uint8_t>(data)};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1);
  EXPECT_EQ(r.f32(), 3.14f);
  EXPECT_EQ(r.f64(), -2.718281828459045);
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.varint(), 127u);
  EXPECT_EQ(r.varint(), 128u);
  EXPECT_EQ(r.varint(), UINT64_MAX);
  EXPECT_EQ(r.str(), "hello");
  Bytes blob = r.blob();
  EXPECT_EQ(to_string(std::span<const std::uint8_t>(blob)), "blobby");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, ReaderOverrunThrows) {
  Bytes data{1, 2};
  BinaryReader r{std::span<const std::uint8_t>(data)};
  EXPECT_EQ(r.u16(), 0x0201);
  EXPECT_THROW(r.u8(), DecodeError);
}

TEST(Bytes, VarintTooLongThrows) {
  Bytes data(11, 0xff);
  BinaryReader r{std::span<const std::uint8_t>(data)};
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Crc32, KnownVectors) {
  // Standard test vector: "123456789" → 0xCBF43926.
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Crc32 inc;
  inc.update("hello ");
  inc.update("world");
  EXPECT_EQ(inc.value(), crc32("hello world"));
}

TEST(Base64, KnownVectors) {
  EXPECT_EQ(base64_encode(""), "");
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

TEST(Base64, RoundTripBinary) {
  Pcg32 rng(3);
  Bytes data(1021);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
  Bytes back = base64_decode(base64_encode(std::span(data)));
  EXPECT_EQ(back, data);
}

TEST(Base64, RejectsMalformed) {
  EXPECT_THROW(base64_decode("abc"), DecodeError);     // bad length
  EXPECT_THROW(base64_decode("ab!="), DecodeError);    // bad char
  EXPECT_THROW(base64_decode("=abc"), DecodeError);    // early padding
  EXPECT_THROW(base64_decode("Zg==Zg=="), DecodeError);  // data after pad
}

TEST(Rng, DeterministicStreams) {
  Pcg32 a(42);
  Pcg32 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
  Pcg32 c(43);
  EXPECT_NE(a.next_u32(), c.next_u32());
}

TEST(Rng, BoundsRespected) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    double d = rng.canonical();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelow64MatchesNextBelowFor32BitBounds) {
  // Callers widened to next_below64 (workload client picks) must keep the
  // exact stream of existing seeded runs when the bound fits in 32 bits.
  Pcg32 a(21);
  Pcg32 b(21);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_below64(1000000), b.next_below(1000000));
  }
  EXPECT_EQ(a.next_below64(0), 0u);
  EXPECT_EQ(a.next_below64(0xffffffffULL), b.next_below(0xffffffffu));
}

TEST(Rng, NextBelow64AddressesFullRangeAboveUint32) {
  // Regression: a population bound above 2^32 must not be truncated to
  // its low 32 bits — draws have to cover the whole range.
  Pcg32 rng(23);
  const std::uint64_t bound = 5ull << 32;
  bool above_32_bits = false;
  for (int i = 0; i < 200; ++i) {
    std::uint64_t v = rng.next_below64(bound);
    EXPECT_LT(v, bound);
    if (v > 0xffffffffULL) above_32_bits = true;
  }
  // P(all 200 draws land in the low 2^32 slice) = (1/5)^200.
  EXPECT_TRUE(above_32_bits);
}

TEST(Rng, GaussianMoments) {
  Pcg32 rng(11);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.gaussian());
  EXPECT_NEAR(acc.mean(), 0.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.05);
}

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  EXPECT_EQ(acc.mean(), 0.0);
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_EQ(acc.sum(), 40.0);
}

TEST(Stats, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.01);
}

TEST(Stats, EwmaConverges) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.add(10.0);
  EXPECT_EQ(e.value(), 10.0);  // seeded by first sample
  for (int i = 0; i < 50; ++i) e.add(20.0);
  EXPECT_NEAR(e.value(), 20.0, 1e-6);
}

TEST(Strings, SplitAndJoin) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "|"), "a|b||c");
  auto ws = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(ws[1], "bar");
}

TEST(Strings, TrimAndPredicates) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("snapshot.js", "snap"));
  EXPECT_FALSE(starts_with("s", "snap"));
  EXPECT_TRUE(ends_with("model.weights", ".weights"));
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

TEST(Strings, Formatters) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(44.0 * 1024 * 1024), "44 MB");
  EXPECT_EQ(format_seconds(12.073), "12.073 s");
  EXPECT_EQ(format_seconds(0.0034), "3.40 ms");
  EXPECT_EQ(format_seconds(0.00034), "340.0 us");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

TEST(Hash, Fnv1aStability) {
  // FNV-1a("") is the offset basis; "a" is a known value.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a("abc"), fnv1a("acb"));
}

TEST(Table, RendersAlignedColumns) {
  TextTable t;
  t.header({"App", "Time (s)"});
  t.row({"GoogleNet", "7.79"});
  t.row({"AgeNet", "12.07"});
  std::string out = t.str();
  EXPECT_NE(out.find("| App"), std::string::npos);
  EXPECT_NE(out.find("7.79"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
  // Numeric cells right-align: "7.79" is padded on the left.
  EXPECT_NE(out.find(" 7.79 |"), std::string::npos);
}

TEST(Aligned, AllocatorReturnsAlignedStorage) {
  // Grow a 64-byte-aligned vector through several reallocations; every
  // data() the allocator hands back must keep the alignment.
  std::vector<float, AlignedAllocator<float, 64>> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(static_cast<float>(i));
    EXPECT_TRUE(is_aligned(v.data(), 64));
  }
  std::vector<double, AlignedAllocator<double, 64>> d(3);
  EXPECT_TRUE(is_aligned(d.data(), 64));
  EXPECT_TRUE(is_aligned(nullptr, 64));
  alignas(64) float buf[32];
  EXPECT_TRUE(is_aligned(buf, 64));
  EXPECT_FALSE(is_aligned(buf + 1, 64));
}

TEST(Aligned, TensorStorageIsCacheLineAligned) {
  // SIMD kernels assume any tensor can be read with full cache-line loads:
  // the guarantee must survive every construction path, including the
  // copies made by stack() and sample().
  using offload::nn::Shape;
  using offload::nn::Tensor;
  Pcg32 rng(99);
  const Tensor zeros = Tensor::zeros({3, 5, 7});
  const Tensor rand = Tensor::random_uniform({2, 4, 4}, rng);
  const Tensor from_list({3}, {1.0f, 2.0f, 3.0f});
  const Tensor from_vec({2}, std::vector<float>{4.0f, 5.0f});
  EXPECT_TRUE(is_aligned(zeros.data().data(), 64));
  EXPECT_TRUE(is_aligned(rand.data().data(), 64));
  EXPECT_TRUE(is_aligned(from_list.data().data(), 64));
  EXPECT_TRUE(is_aligned(from_vec.data().data(), 64));

  const Tensor samples[] = {Tensor::random_uniform({3, 3}, rng),
                            Tensor::random_uniform({3, 3}, rng)};
  const Tensor stacked = Tensor::stack(samples);
  EXPECT_TRUE(is_aligned(stacked.data().data(), 64));
  EXPECT_TRUE(is_aligned(stacked.sample(1).data().data(), 64));
  EXPECT_TRUE(is_aligned(stacked.reshaped({18}).data().data(), 64));
  const Tensor copy = stacked;  // deep copy re-allocates — still aligned
  EXPECT_TRUE(is_aligned(copy.data().data(), 64));
}

// ---------------------------------------------------------------------------
// SpscMailbox (the cross-partition post queue in sim::PartitionedSimulation)

TEST(SpscMailbox, PreservesPushOrderAcrossChunkBoundaries) {
  SpscMailbox<int> mb;
  const int n = 1000;  // spans several 128-slot chunks
  for (int i = 0; i < n; ++i) mb.push(i);
  EXPECT_EQ(mb.in_flight(), static_cast<std::size_t>(n));
  std::vector<int> got;
  mb.drain([&got](int&& v) { got.push_back(v); });
  ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[i], i);
  EXPECT_EQ(mb.in_flight(), 0u);
  // Drained chunks are recycled: interleaved push/drain keeps working.
  mb.drain([](int&&) { FAIL() << "mailbox should be empty"; });
  for (int i = 0; i < 300; ++i) mb.push(-i);
  got.clear();
  mb.drain([&got](int&& v) { got.push_back(v); });
  ASSERT_EQ(got.size(), 300u);
  EXPECT_EQ(got.front(), 0);
  EXPECT_EQ(got.back(), -299);
}

TEST(SpscMailbox, CarriesMoveOnlyElements) {
  SpscMailbox<std::unique_ptr<int>> mb;
  for (int i = 0; i < 5; ++i) mb.push(std::make_unique<int>(i));
  int next = 0;
  mb.drain([&next](std::unique_ptr<int>&& p) { EXPECT_EQ(*p, next++); });
  EXPECT_EQ(next, 5);
}

TEST(SpscMailbox, DestructorReleasesUnconsumedElements) {
  auto probe = std::make_shared<int>(42);
  std::weak_ptr<int> watch = probe;
  {
    SpscMailbox<std::shared_ptr<int>> mb;
    for (int i = 0; i < 200; ++i) mb.push(probe);  // spans chunks
    probe.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired()) << "destructor must destroy queued elements";
}

TEST(SpscMailbox, SingleProducerSingleConsumerKeepsFifo) {
  // The concurrent contract the partitioned simulator relies on: one
  // partition pushes while another drains; the drain sees a FIFO prefix.
  // (Run under TSan by the sanitizer CI lane.)
  SpscMailbox<std::uint64_t> mb;
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&mb] {
    for (std::uint64_t i = 0; i < kCount; ++i) mb.push(i);
  });
  std::uint64_t expect = 0;
  while (expect < kCount) {
    mb.drain([&expect](std::uint64_t&& v) {
      ASSERT_EQ(v, expect);
      ++expect;
    });
  }
  producer.join();
  EXPECT_EQ(expect, kCount);
  EXPECT_EQ(mb.in_flight(), 0u);
}

}  // namespace
}  // namespace offload::util
