// Differential suite for the partitioned parallel engine
// (src/sim/partition.h). The spine: a seeded mixed workload of 8 lanes —
// local schedules, equal-time pairs, cancels, and cross-lane posts — run
// at K ∈ {1, 2, 4, 8} partitions under both scheduler backends, with the
// per-lane event transcripts required to be byte-identical to the K = 1
// reference for 50 seeds. Around the spine: lookahead-boundary legality
// (exactly now + L is the first legal post time), cross-partition cancel
// via owner messages, the zero-lookahead lockstep degenerate mode, the
// K = 1 ⇔ plain-Simulation equivalence, and the workload generator's
// shard stability (same client id → same shard slice at any K; the
// merged K-way arrival stream is byte-identical to K = 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/net/channel.h"
#include "src/sim/partition.h"
#include "src/sim/simulation.h"
#include "src/sim/workload.h"
#include "src/util/rng.h"

namespace offload::sim {
namespace {

constexpr int kLanes = 8;
const SimTime kLookahead = SimTime::millis(1);

// ---------------------------------------------------------------------------
// Mixed-workload harness. Each lane owns its transcript, RNG, and handle
// list; a lane's state is only ever touched by events firing on the lane's
// own partition, so the harness is data-race-free at any K (TSan runs it).

struct Harness;

struct Lane {
  Harness* h = nullptr;
  int id = 0;
  int part = 0;
  std::uint64_t budget = 0;
  util::Pcg32 rng;
  std::string transcript;
  std::int64_t last_ns = -1;
  int monotonic_violations = 0;
  std::uint64_t ticks = 0;
  std::uint64_t next_stamp = 0;
  std::vector<EventHandle> handles;
  bool cancels_enabled = true;
};

struct Harness {
  PartitionedSimulation psim;
  std::array<Lane, kLanes> lanes;

  Harness(int k, SchedulerKind kind, SimTime lookahead, std::uint64_t seed,
          std::uint64_t budget)
      : psim(PartitionedSimulation::Options{k, kind, lookahead}) {
    for (int i = 0; i < kLanes; ++i) {
      Lane& lane = lanes[i];
      lane.h = this;
      lane.id = i;
      lane.part = i * k / kLanes;  // contiguous lane → partition blocks
      lane.budget = budget;
      lane.rng = util::Pcg32(seed, 100 + static_cast<std::uint64_t>(i));
    }
  }
};

void tick(Lane& lane, std::uint64_t tag);

EventFn make_tick(Lane* lane, std::uint64_t tag) {
  return [lane, tag] { tick(*lane, tag); };
}

void tick(Lane& lane, std::uint64_t tag) {
  Simulation& eng = lane.h->psim.partition(lane.part);
  const std::int64_t now_ns = eng.now().ns();
  if (now_ns < lane.last_ns) ++lane.monotonic_violations;
  lane.last_ns = now_ns;
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%lld tag=%llu\n",
                static_cast<long long>(now_ns),
                static_cast<unsigned long long>(tag));
  lane.transcript += buf;
  ++lane.ticks;
  if (lane.ticks >= lane.budget) return;

  // Tags are (lane, tick index, action) — unique, and a pure function of
  // the lane's own history, so transcripts can be compared across K.
  const std::uint64_t base =
      (static_cast<std::uint64_t>(lane.id) << 40) | (lane.ticks << 8);
  const std::uint32_t u = lane.rng.next_below(100);
  if (u < 50) {
    // Local follow-up somewhere in the next 5 ms (spans ~5 windows).
    SimTime delay = SimTime::nanos(1 + lane.rng.next_below(5'000'000));
    lane.handles.push_back(eng.schedule(delay, make_tick(&lane, base | 1)));
  } else if (u < 75) {
    // Cross-lane post (any target: remote, co-resident, or self). The
    // stamp (sender lane, counter) is unique per receiver/when at any K.
    Lane& target = lane.h->lanes[lane.rng.next_below(kLanes)];
    SimTime when = eng.now() + lane.h->psim.lookahead() +
                   SimTime::nanos(lane.rng.next_below(5'000'000));
    std::uint64_t stamp =
        (static_cast<std::uint64_t>(lane.id) << 48) | lane.next_stamp++;
    lane.h->psim.post(lane.part, target.part, when, stamp,
                      make_tick(&target, base | 2));
  } else if (u < 85 && lane.cancels_enabled && !lane.handles.empty()) {
    // Cancel a random earlier local handle; it may already have fired,
    // and whether it did is a deterministic fact of the schedule.
    std::size_t idx = lane.rng.next_below(
        static_cast<std::uint32_t>(lane.handles.size()));
    bool ok = eng.cancel(lane.handles[idx]);
    std::snprintf(buf, sizeof buf, "cancel idx=%zu ok=%d\n", idx, ok ? 1 : 0);
    lane.transcript += buf;
  } else {
    // Equal-time pair: FIFO within the lane must hold at any K.
    SimTime delay = SimTime::nanos(1 + lane.rng.next_below(5'000'000));
    lane.handles.push_back(eng.schedule(delay, make_tick(&lane, base | 3)));
    lane.handles.push_back(eng.schedule(delay, make_tick(&lane, base | 4)));
  }
}

void seed_harness(Harness& h) {
  // Two local seed events per lane, plus one pre-run post from lane 0 to
  // every lane (delivered at the first merge barrier).
  for (Lane& lane : h.lanes) {
    Simulation& eng = h.psim.partition(lane.part);
    for (int j = 0; j < 2; ++j) {
      SimTime at = SimTime::nanos(1 + lane.rng.next_below(2'000'000));
      eng.schedule_at(at, make_tick(&lane, (static_cast<std::uint64_t>(
                                               lane.id)
                                            << 40) |
                                               static_cast<std::uint64_t>(j)));
    }
  }
  if (h.psim.lookahead() != SimTime::max()) {
    Lane& sender = h.lanes[0];
    for (int i = 0; i < kLanes; ++i) {
      SimTime when = h.psim.lookahead() + SimTime::nanos(137 * (i + 1));
      std::uint64_t stamp =
          (static_cast<std::uint64_t>(sender.id) << 48) | sender.next_stamp++;
      h.psim.post(sender.part, h.lanes[i].part, when, stamp,
                  make_tick(&h.lanes[i], 0xfee0u | static_cast<unsigned>(i)));
    }
  }
}

struct RunResult {
  std::array<std::string, kLanes> transcripts;
  std::int64_t now_ns = 0;
  std::uint64_t rounds = 0;
  std::uint64_t fired = 0;
};

RunResult run_mixed(std::uint64_t seed, int k, SchedulerKind kind) {
  Harness h(k, kind, kLookahead, seed, /*budget=*/40);
  seed_harness(h);
  h.psim.run();
  EXPECT_EQ(h.psim.pending(), 0u);
  RunResult r;
  for (int i = 0; i < kLanes; ++i) {
    EXPECT_EQ(h.lanes[i].monotonic_violations, 0)
        << "lane " << i << " observed time going backwards";
    r.transcripts[i] = std::move(h.lanes[i].transcript);
  }
  r.now_ns = h.psim.now().ns();
  r.rounds = h.psim.rounds();
  r.fired = h.psim.events_fired();
  return r;
}

// The spine: 50 seeds × K ∈ {1,2,4,8} × {wheel, heap}. Every per-lane
// transcript, the committed horizon, the window count, and the total
// fired count must match the K = 1 reference byte for byte.
TEST(SimPartitionDifferential, TranscriptsMatchSinglePartitionFor50Seeds) {
  for (SchedulerKind kind : {SchedulerKind::kWheel, SchedulerKind::kHeap}) {
    const char* backend = kind == SchedulerKind::kWheel ? "wheel" : "heap";
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      RunResult ref = run_mixed(seed, 1, kind);
      EXPECT_GT(ref.fired, 0u);
      for (int k : {2, 4, 8}) {
        RunResult got = run_mixed(seed, k, kind);
        for (int lane = 0; lane < kLanes; ++lane) {
          ASSERT_EQ(got.transcripts[lane], ref.transcripts[lane])
              << backend << " seed=" << seed << " K=" << k
              << " lane=" << lane;
        }
        EXPECT_EQ(got.now_ns, ref.now_ns)
            << backend << " seed=" << seed << " K=" << k;
        EXPECT_EQ(got.rounds, ref.rounds)
            << backend << " seed=" << seed << " K=" << k;
        EXPECT_EQ(got.fired, ref.fired)
            << backend << " seed=" << seed << " K=" << k;
      }
    }
  }
}

// Both backends agree with each other too (the partitioned layer sits on
// the same (when, seq) contract the backends already share).
TEST(SimPartitionDifferential, BackendsAgreeUnderPartitioning) {
  for (std::uint64_t seed : {3u, 17u, 41u}) {
    RunResult wheel = run_mixed(seed, 4, SchedulerKind::kWheel);
    RunResult heap = run_mixed(seed, 4, SchedulerKind::kHeap);
    for (int lane = 0; lane < kLanes; ++lane) {
      EXPECT_EQ(wheel.transcripts[lane], heap.transcripts[lane])
          << "seed=" << seed << " lane=" << lane;
    }
    EXPECT_EQ(wheel.fired, heap.fired);
  }
}

// ---------------------------------------------------------------------------
// K = 1 is bit-for-bit the sequential engine: the same local-only script
// on a plain Simulation and on partition(0) of a 1-partition engine.

std::string run_local_script(Simulation& sim, std::size_t (*drain)(void*),
                             void* ctx, std::uint64_t seed) {
  std::string transcript;
  util::Pcg32 rng(seed, 7);
  struct Node {
    Simulation* sim;
    std::string* out;
    util::Pcg32* rng;
    int remaining;
  };
  auto node = std::make_unique<Node>(Node{&sim, &transcript, &rng, 200});
  Node* n = node.get();
  std::vector<EventHandle> handles;
  // Self-sustaining churn: each event logs, then schedules 0–2 successors
  // and occasionally cancels an old handle.
  std::function<void()> step = [n, &handles, &step] {
    char buf[48];
    std::snprintf(buf, sizeof buf, "t=%lld\n",
                  static_cast<long long>(n->sim->now().ns()));
    *n->out += buf;
    if (--n->remaining <= 0) return;
    std::uint32_t u = n->rng->next_below(10);
    for (std::uint32_t j = 0; j <= u % 2; ++j) {
      handles.push_back(n->sim->schedule(
          SimTime::nanos(1 + n->rng->next_below(900'000)), [&step] { step(); }));
    }
    if (u >= 8 && !handles.empty()) {
      std::size_t idx = n->rng->next_below(
          static_cast<std::uint32_t>(handles.size()));
      bool ok = n->sim->cancel(handles[idx]);
      std::snprintf(buf, sizeof buf, "cancel=%d\n", ok ? 1 : 0);
      *n->out += buf;
    }
  };
  for (int j = 0; j < 4; ++j) {
    sim.schedule_at(SimTime::nanos(100 + 37 * j), [&step] { step(); });
  }
  std::size_t fired = drain(ctx);
  char buf[48];
  std::snprintf(buf, sizeof buf, "fired=%zu\n", fired);
  transcript += buf;
  return transcript;
}

TEST(SimPartition, SinglePartitionMatchesPlainSimulation) {
  for (SchedulerKind kind : {SchedulerKind::kWheel, SchedulerKind::kHeap}) {
    Simulation plain(kind);
    std::string a = run_local_script(
        plain, [](void* s) { return static_cast<Simulation*>(s)->run(); },
        &plain, 11);

    PartitionedSimulation psim(
        PartitionedSimulation::Options{1, kind, SimTime::max()});
    std::string b = run_local_script(
        psim.partition(0),
        [](void* p) { return static_cast<PartitionedSimulation*>(p)->run(); },
        &psim, 11);
    EXPECT_EQ(a, b);
  }
}

// ---------------------------------------------------------------------------
// Lookahead boundary: exactly now + L is the first legal post time, both
// at setup (now = 0) and from inside a firing event.

TEST(SimPartition, PostAtExactLookaheadBoundaryIsLegal) {
  PartitionedSimulation psim(
      PartitionedSimulation::Options{2, SchedulerKind::kWheel, kLookahead});
  std::string log;
  psim.post(0, 1, kLookahead, 1, [&log] { log += "boundary\n"; });
  EXPECT_THROW(
      psim.post(0, 1, kLookahead - SimTime::nanos(1), 2, [] {}),
      std::logic_error);

  // From inside an event at t = 5 ms the bound moves with the clock.
  bool threw_inside = false;
  psim.partition(0).schedule_at(
      SimTime::millis(5), [&psim, &log, &threw_inside] {
        SimTime now = psim.partition(0).now();
        try {
          psim.post(0, 1, now + kLookahead - SimTime::nanos(1), 3, [] {});
        } catch (const std::logic_error&) {
          threw_inside = true;
        }
        psim.post(0, 1, now + kLookahead, 4, [&log] { log += "inside\n"; });
      });
  psim.run();
  EXPECT_TRUE(threw_inside);
  EXPECT_EQ(log, "boundary\ninside\n");
  EXPECT_EQ(psim.pending(), 0u);
}

TEST(SimPartition, IndependentPartitionsRejectPosts) {
  PartitionedSimulation psim(PartitionedSimulation::Options{
      2, SchedulerKind::kWheel, SimTime::max()});
  EXPECT_THROW(psim.post(0, 1, SimTime::millis(1), 1, [] {}),
               std::logic_error);
  EXPECT_THROW(psim.post(0, 2, SimTime::millis(1), 1, [] {}),
               std::out_of_range);
  EXPECT_THROW(psim.post(-1, 0, SimTime::millis(1), 1, [] {}),
               std::out_of_range);
}

// The lookahead for channel-connected actors is the channel's latency
// floor: a ping-pong at exactly that spacing crosses a partition pair at
// every hop and lands on the expected timestamps.
TEST(SimPartition, LookaheadFromChannelLatencyFloor) {
  net::ChannelConfig cc;
  cc.a_to_b.latency = SimTime::millis(2);
  cc.b_to_a.latency = SimTime::millis(5);
  ASSERT_EQ(net::latency_floor(cc), SimTime::millis(2));

  PartitionedSimulation psim(PartitionedSimulation::Options{
      2, SchedulerKind::kWheel, net::latency_floor(cc)});
  std::array<std::string, 2> logs;
  struct Ctx {
    PartitionedSimulation* psim;
    std::array<std::string, 2>* logs;
    SimTime hop;
    std::uint64_t stamp = 100;
  } ctx{&psim, &logs, net::latency_floor(cc)};

  std::function<void(int, int)> bounce = [&ctx, &bounce](int side, int left) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "t=%lld\n",
                  static_cast<long long>(
                      ctx.psim->partition(side).now().ns()));
    (*ctx.logs)[side] += buf;
    if (left == 0) return;
    int peer = 1 - side;
    ctx.psim->post(side, peer,
                   ctx.psim->partition(side).now() + ctx.hop, ctx.stamp++,
                   [&bounce, peer, left] { bounce(peer, left - 1); });
  };
  psim.partition(0).schedule_at(SimTime::zero(),
                                [&bounce] { bounce(0, 6); });
  psim.run();
  EXPECT_EQ(logs[0], "t=0\nt=4000000\nt=8000000\nt=12000000\n");
  EXPECT_EQ(logs[1], "t=2000000\nt=6000000\nt=10000000\n");
}

// ---------------------------------------------------------------------------
// Cross-partition cancel: there is no remote cancel primitive — the
// canceller posts a message and the owner cancels its own handle. Both
// the in-time cancel and the too-late (stale) cancel must read the same
// at every K.

TEST(SimPartition, CrossPartitionCancelViaOwnerMessage) {
  std::string reference;
  for (int k : {1, 2, 4, 8}) {
    PartitionedSimulation psim(
        PartitionedSimulation::Options{k, SchedulerKind::kWheel, kLookahead});
    const int owner_part = k - 1;
    Simulation& owner = psim.partition(owner_part);
    std::string log;
    // E at 10 ms will be cancelled in time; F at 3 ms fires before its
    // cancel message arrives at 8 ms.
    EventHandle e = owner.schedule_at(SimTime::millis(10),
                                      [&log] { log += "E fired\n"; });
    EventHandle f = owner.schedule_at(SimTime::millis(3),
                                      [&log] { log += "F fired\n"; });
    psim.post(0, owner_part, SimTime::millis(2), 1, [&owner, &log, e] {
      char buf[32];
      std::snprintf(buf, sizeof buf, "cancel E ok=%d\n",
                    owner.cancel(e) ? 1 : 0);
      log += buf;
    });
    psim.post(0, owner_part, SimTime::millis(8), 2, [&owner, &log, f] {
      char buf[32];
      std::snprintf(buf, sizeof buf, "cancel F ok=%d\n",
                    owner.cancel(f) ? 1 : 0);
      log += buf;
    });
    psim.run();
    EXPECT_EQ(log, "cancel E ok=1\nF fired\ncancel F ok=0\n") << "K=" << k;
    if (k == 1) {
      reference = log;
    } else {
      EXPECT_EQ(log, reference) << "K=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Zero lookahead: the protocol degenerates to lockstep — one global
// timestamp per round, same-time posts delivered at the next barrier but
// still at that timestamp.

TEST(SimPartition, ZeroLookaheadFallsBackToLockstep) {
  std::vector<std::string> reference;
  std::uint64_t reference_rounds = 0;
  for (int k : {1, 2, 4}) {
    PartitionedSimulation psim(PartitionedSimulation::Options{
        k, SchedulerKind::kWheel, SimTime::zero()});
    std::vector<std::string> logs(4);  // 4 logical actors, actor a → a*k/4
    struct Hop {
      PartitionedSimulation* psim;
      std::vector<std::string>* logs;
      int k;
    } ctx{&psim, &logs, k};
    std::function<void(int, int)> hop = [&ctx, &hop](int actor, int left) {
      int part = actor * ctx.k / 4;
      char buf[48];
      std::snprintf(buf, sizeof buf, "t=%lld hop=%d\n",
                    static_cast<long long>(
                        ctx.psim->partition(part).now().ns()),
                    left);
      (*ctx.logs)[actor] += buf;
      if (left == 0) return;
      int next = (actor + 1) % 4;
      ctx.psim->post(part, next * ctx.k / 4,
                     ctx.psim->partition(part).now(),  // same timestamp
                     static_cast<std::uint64_t>(left),
                     [&hop, next, left] { hop(next, left - 1); });
    };
    psim.partition(0).schedule_at(SimTime::micros(1),
                                  [&hop] { hop(0, 10); });
    psim.run();
    // Every hop happened at exactly t = 1 us.
    for (const std::string& log : logs) {
      for (std::size_t pos = log.find("t="); pos != std::string::npos;
           pos = log.find("t=", pos + 1)) {
        EXPECT_EQ(log.compare(pos, 7, "t=1000 "), 0) << log;
      }
    }
    EXPECT_EQ(psim.now(), SimTime::micros(1));
    EXPECT_EQ(psim.events_fired(), 11u);
    if (k == 1) {
      reference = logs;
      reference_rounds = psim.rounds();
    } else {
      EXPECT_EQ(logs, reference) << "K=" << k;
      EXPECT_EQ(psim.rounds(), reference_rounds) << "K=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Chunked driving: run_until in fixed steps keeps now() == deadline and
// monotone, and the engine drains completely by the horizon.

TEST(SimPartition, RunUntilChunksAdvanceMonotonically) {
  Harness h(4, SchedulerKind::kWheel, kLookahead, /*seed=*/7, /*budget=*/40);
  // Cancels off: a chunk deadline can split a window, which may reorder
  // exact equal-time local-vs-message ties; without cancels that cannot
  // change which events exist, only tie order (unobservable here).
  for (Lane& lane : h.lanes) lane.cancels_enabled = false;
  seed_harness(h);
  SimTime deadline = SimTime::zero();
  std::int64_t prev = -1;
  for (int i = 0; i < 200 && h.psim.pending() > 0; ++i) {
    deadline = deadline + SimTime::millis(7);
    h.psim.run_until(deadline);
    EXPECT_EQ(h.psim.now(), deadline);
    EXPECT_GT(h.psim.now().ns(), prev);
    prev = h.psim.now().ns();
  }
  EXPECT_EQ(h.psim.pending(), 0u);
  for (const Lane& lane : h.lanes) {
    EXPECT_EQ(lane.monotonic_violations, 0);
  }
}

TEST(SimPartition, PartitionsFromEnvValidation) {
  // No env var set in the test binary → default 1 partition.
  PartitionedSimulation psim;
  EXPECT_GE(psim.partitions(), 1);
  EXPECT_EQ(psim.lookahead(), SimTime::max());
}

// ---------------------------------------------------------------------------
// Workload sharding (src/sim/workload.h): shard membership is a pure
// function of (client, population, shard_count) and the per-shard request
// streams — and therefore their deterministic merge — are identical no
// matter how many partitions the shards are spread across.

TEST(WorkloadSharding, ShardRangesPartitionThePopulation) {
  for (std::uint64_t n : {1ull, 7ull, 1000ull, 10'003ull}) {
    for (std::uint32_t count : {1u, 2u, 3u, 4u, 8u}) {
      EXPECT_EQ(workload::shard_begin(n, 0, count), 0u);
      EXPECT_EQ(workload::shard_begin(n, count, count), n);
      for (std::uint32_t s = 0; s < count; ++s) {
        EXPECT_LE(workload::shard_begin(n, s, count),
                  workload::shard_begin(n, s + 1, count));
      }
      for (std::uint64_t c = 0; c < n; ++c) {
        std::uint32_t s = workload::shard_of(c, n, count);
        ASSERT_LT(s, count);
        ASSERT_LE(workload::shard_begin(n, s, count), c);
        ASSERT_LT(c, workload::shard_begin(n, s + 1, count));
      }
    }
  }
}

TEST(WorkloadSharding, GeneratorOwnsExactlyItsShardRange) {
  const std::uint64_t n = 4000;
  const std::uint32_t kShards = 4;
  Simulation sim(SchedulerKind::kWheel);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    workload::Config cfg;
    cfg.clients = n;
    cfg.seed = 9;
    cfg.shard_count = kShards;
    cfg.shard_index = s;
    workload::Generator gen(sim, cfg, [](const workload::Request&) {});
    EXPECT_EQ(gen.shard_client_begin(), workload::shard_begin(n, s, kShards));
    EXPECT_EQ(gen.shard_client_end(),
              workload::shard_begin(n, s + 1, kShards));
  }
}

struct ShardStreams {
  std::array<std::string, 4> per_shard;
  std::string merged;
};

ShardStreams run_sharded_workload(int k) {
  const std::uint32_t kShards = 4;
  PartitionedSimulation psim(PartitionedSimulation::Options{
      k, SchedulerKind::kWheel, SimTime::max()});
  ShardStreams out;
  struct Record {
    std::int64_t at;
    std::uint32_t shard;
    std::uint64_t idx;
    std::string line;
  };
  std::array<std::vector<Record>, 4> records;
  std::vector<std::unique_ptr<workload::Generator>> gens;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    workload::Config cfg;
    cfg.clients = 4000;
    cfg.seed = 99;
    cfg.shard_count = kShards;
    cfg.shard_index = s;
    cfg.arrivals.session_rate_per_s = 200;
    cfg.arrivals.diurnal.enabled = true;
    cfg.arrivals.diurnal.period_s = 60;
    cfg.arrivals.flash_crowds = {{20.0, 5.0, 3.0}};
    cfg.session.warm_start_fraction = 0.3;
    int part = static_cast<int>(s) * k / static_cast<int>(kShards);
    auto* recs = &records[s];
    gens.push_back(std::make_unique<workload::Generator>(
        psim.partition(part), cfg, [recs, s](const workload::Request& r) {
          char buf[96];
          std::snprintf(buf, sizeof buf,
                        "s=%u t=%lld c=%llu sess=%llu i=%u cold=%d dc=%u\n",
                        s, static_cast<long long>(r.at.ns()),
                        static_cast<unsigned long long>(r.client),
                        static_cast<unsigned long long>(r.session),
                        r.index_in_session, r.cold_model ? 1 : 0,
                        r.device_class);
          recs->push_back(Record{r.at.ns(), s,
                                 static_cast<std::uint64_t>(recs->size()),
                                 buf});
        }));
    gens.back()->start(SimTime::seconds(40.0));
  }
  psim.run();
  std::vector<Record> all;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (Record& r : records[s]) out.per_shard[s] += r.line;
    for (Record& r : records[s]) all.push_back(std::move(r));
  }
  std::sort(all.begin(), all.end(), [](const Record& a, const Record& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.idx < b.idx;
  });
  for (const Record& r : all) out.merged += r.line;
  return out;
}

TEST(WorkloadSharding, MergedShardStreamIsPartitionCountInvariant) {
  ShardStreams ref = run_sharded_workload(1);
  EXPECT_FALSE(ref.merged.empty());
  // Every emitted client sits inside its shard's range.
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_FALSE(ref.per_shard[s].empty()) << "shard " << s;
  }
  for (int k : {2, 4}) {
    ShardStreams got = run_sharded_workload(k);
    for (std::uint32_t s = 0; s < 4; ++s) {
      ASSERT_EQ(got.per_shard[s], ref.per_shard[s])
          << "K=" << k << " shard=" << s;
    }
    EXPECT_EQ(got.merged, ref.merged) << "K=" << k;
  }
}

// A 1-shard generator on partition 0 of a 1-partition engine emits the
// byte-identical stream a plain Simulation produces — the K = 1 engine
// pass-through, observed at the workload layer.
TEST(WorkloadSharding, SingleShardOnPartitionedEngineMatchesPlain) {
  auto run = [](Simulation& sim, std::size_t (*drain)(void*), void* ctx) {
    workload::Config cfg;
    cfg.clients = 1000;
    cfg.seed = 21;
    cfg.arrivals.session_rate_per_s = 80;
    std::string stream;
    workload::Generator gen(sim, cfg, [&stream](const workload::Request& r) {
      char buf[80];
      std::snprintf(buf, sizeof buf, "t=%lld c=%llu i=%u cold=%d\n",
                    static_cast<long long>(r.at.ns()),
                    static_cast<unsigned long long>(r.client),
                    r.index_in_session, r.cold_model ? 1 : 0);
      stream += buf;
    });
    gen.start(SimTime::seconds(20.0));
    drain(ctx);
    return stream;
  };
  Simulation plain(SchedulerKind::kWheel);
  std::string a = run(
      plain, [](void* s) { return static_cast<Simulation*>(s)->run(); },
      &plain);
  PartitionedSimulation psim(PartitionedSimulation::Options{
      1, SchedulerKind::kWheel, SimTime::max()});
  std::string b = run(
      psim.partition(0),
      [](void* p) { return static_cast<PartitionedSimulation*>(p)->run(); },
      &psim);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace offload::sim
