// Unit tests for the edge layer: ModelStore, BrowserHost ML bindings, and
// the model-host snapshot behaviour (the pre-send optimization: the model
// never rides inside a snapshot).
#include <gtest/gtest.h>

#include "src/edge/browser_host.h"
#include "src/edge/model_store.h"
#include "src/edge/protocol.h"
#include "src/util/crc32.h"
#include "src/jsvm/snapshot.h"
#include "src/nn/models.h"

namespace offload::edge {
namespace {

std::shared_ptr<ModelStore> store_with_tiny() {
  auto store = std::make_shared<ModelStore>();
  auto net = nn::build_tiny_cnn(17);
  store->store_files(nn::model_files(*net));
  return store;
}

nn::Tensor test_image() {
  util::Pcg32 rng(8);
  return nn::Tensor::random_uniform(nn::Shape{3, 32, 32}, rng, 0.0f, 1.0f);
}

TEST(ModelStoreTest, StoreFindReplace) {
  ModelStore store;
  store.store_file({"a.desc", {1, 2, 3}});
  EXPECT_TRUE(store.has_file("a.desc"));
  EXPECT_FALSE(store.has_file("b.desc"));
  EXPECT_EQ(store.total_bytes(), 3u);
  store.store_file({"a.desc", {9}});
  EXPECT_EQ(store.total_bytes(), 1u);
  EXPECT_EQ(store.file_count(), 1u);
}

TEST(ModelStoreTest, InstantiateFromFiles) {
  auto store = store_with_tiny();
  EXPECT_TRUE(store->can_instantiate("tinycnn"));
  auto net = store->instantiate("tinycnn");
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->name(), "tinycnn");
  // Cached: same instance on second call.
  EXPECT_EQ(store->instantiate("tinycnn").get(), net.get());
  // Matches the original network bit-exactly.
  auto original = nn::build_tiny_cnn(17);
  nn::Tensor in = test_image();
  EXPECT_EQ(nn::Tensor::max_abs_diff(net->forward(in).output,
                                     original->forward(in).output),
            0.0f);
}

TEST(ModelStoreTest, MissingFilesThrow) {
  ModelStore store;
  EXPECT_FALSE(store.can_instantiate("nope"));
  EXPECT_THROW(store.instantiate("nope"), std::runtime_error);
  auto net = nn::build_tiny_cnn(17);
  auto files = nn::model_files(*net);
  store.store_file(files[0]);  // description only, no weights
  EXPECT_THROW(store.instantiate("tinycnn"), std::runtime_error);
}

TEST(ModelStoreTest, RearOnlyInstantiation) {
  ModelStore store;
  auto net = nn::build_tiny_cnn(17);
  store.store_files(nn::model_files_rear_only(*net, 2));
  EXPECT_TRUE(store.can_instantiate("tinycnn"));
  auto rebuilt = store.instantiate("tinycnn");
  nn::Tensor in = test_image();
  nn::Tensor feature = net->forward_front(in, 2);
  // Rear matches; front differs (weights withheld).
  EXPECT_EQ(nn::Tensor::max_abs_diff(net->forward_rear(feature, 2),
                                     rebuilt->forward_rear(feature, 2)),
            0.0f);
}

TEST(BrowserHostTest, InferenceMatchesDirectExecution) {
  BrowserHost host(nn::DeviceProfile::embedded_client(), store_with_tiny());
  host.add_image("input", test_image());
  host.interp().eval_program(
      "var model = loadModel('tinycnn');"
      "var scores = model.inference(loadImage('input'));"
      "var best = 0;"
      "for (var i = 1; i < scores.length; i++) {"
      "  if (scores[i] > scores[best]) { best = i; }"
      "}");
  auto net = nn::build_tiny_cnn(17);
  auto expected = net->forward(test_image()).output;
  double best = jsvm::to_number(*host.interp().globals()->find("best"));
  EXPECT_EQ(static_cast<std::int64_t>(best), expected.argmax());
  EXPECT_GT(host.pending_compute_seconds(), 0.0);
}

TEST(BrowserHostTest, SetPartitionCutValidatesAgainstNodeCount) {
  BrowserHost host(nn::DeviceProfile::embedded_client(), store_with_tiny());
  const std::size_t nodes = store_with_tiny()->instantiate("tinycnn")->size();
  // Every in-range cut (including the final node = fully local) is fine.
  host.set_partition_cut("tinycnn", 0);
  host.set_partition_cut("tinycnn", nodes - 1);
  // One past the end is rejected with the typed error, message intact.
  try {
    host.set_partition_cut("tinycnn", nodes);
    FAIL() << "out-of-range cut was accepted";
  } catch (const InvalidCutError& e) {
    EXPECT_NE(std::string(e.what()).find("tinycnn"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(std::to_string(nodes)),
              std::string::npos);
  }
  EXPECT_THROW(host.set_partition_cut("tinycnn", SIZE_MAX), InvalidCutError);
  // InvalidCutError is an out_of_range, so legacy catch sites still work.
  EXPECT_THROW(host.set_partition_cut("tinycnn", nodes + 7),
               std::out_of_range);
  // Unknown models cannot be validated yet: the cut is recorded and
  // checked lazily when the model becomes instantiable (load time).
  host.set_partition_cut("not_yet_uploaded", 12345);
}

TEST(BrowserHostTest, ComputeAccountingConsumable) {
  BrowserHost host(nn::DeviceProfile::embedded_client(), store_with_tiny());
  host.add_image("input", test_image());
  host.interp().eval_program(
      "var model = loadModel('tinycnn');"
      "model.inference(loadImage('input'));");
  auto net = nn::build_tiny_cnn(17);
  double expected =
      nn::DeviceProfile::embedded_client().network_time_s(*net);
  EXPECT_NEAR(host.consume_compute_seconds(), expected, expected * 1e-9);
  EXPECT_EQ(host.consume_compute_seconds(), 0.0);  // reset after read
}

TEST(BrowserHostTest, PartialInferenceComposition) {
  BrowserHost host(nn::DeviceProfile::embedded_client(), store_with_tiny());
  host.add_image("input", test_image());
  host.set_partition_cut("tinycnn", 2);
  host.interp().eval_program(
      "var model = loadModel('tinycnn');"
      "var feature = model.inference_front(loadImage('input'));"
      "var scores = model.inference_rear(feature);");
  auto net = nn::build_tiny_cnn(17);
  auto expected = net->forward(test_image()).output;
  auto scores = std::get<jsvm::TypedArrayPtr>(
      *host.interp().globals()->find("scores"));
  ASSERT_EQ(static_cast<std::int64_t>(scores->data.size()),
            expected.elements());
  for (std::int64_t i = 0; i < expected.elements(); ++i) {
    EXPECT_EQ(scores->data[static_cast<std::size_t>(i)], expected[i]) << i;
  }
}

TEST(BrowserHostTest, PartialWithoutCutConfiguredThrows) {
  BrowserHost host(nn::DeviceProfile::embedded_client(), store_with_tiny());
  host.add_image("input", test_image());
  EXPECT_THROW(host.interp().eval_program(
                   "var model = loadModel('tinycnn');"
                   "model.inference_front(loadImage('input'));"),
               jsvm::JsError);
}

TEST(BrowserHostTest, WrongInputSizeThrows) {
  BrowserHost host(nn::DeviceProfile::embedded_client(), store_with_tiny());
  EXPECT_THROW(host.interp().eval_program(
                   "var model = loadModel('tinycnn');"
                   "model.inference(Float32Array(5));"),
               jsvm::JsError);
}

TEST(BrowserHostTest, UnknownModelThrows) {
  BrowserHost host(nn::DeviceProfile::embedded_client(),
                   std::make_shared<ModelStore>());
  EXPECT_THROW(host.interp().eval_program("loadModel('ghost');"),
               jsvm::JsError);
}

TEST(BrowserHostTest, ModelExcludedFromSnapshotAndRestoredByName) {
  // The heart of pre-sending: snapshot a realm holding a model + feature,
  // restore on a *different* host with its own store, keep working.
  auto store = store_with_tiny();
  BrowserHost client(nn::DeviceProfile::embedded_client(), store);
  client.add_image("input", test_image());
  client.set_partition_cut("tinycnn", 2);
  client.interp().eval_program(
      "var model = loadModel('tinycnn');"
      "var feature = model.inference_front(loadImage('input'));");
  jsvm::SnapshotResult snap = jsvm::capture_snapshot(client.interp());
  // Mostly feature data; the ~0.5 MB model is not inside.
  auto tiny = nn::build_tiny_cnn(17);
  EXPECT_LT(snap.stats.total_bytes, tiny->param_bytes() / 2);
  EXPECT_LT(snap.stats.non_feature_bytes(), 5'000u);
  EXPECT_NE(snap.program.find("__loadModel(\"tinycnn\")"), std::string::npos);

  BrowserHost server(nn::DeviceProfile::edge_server(), store);
  server.set_partition_cut("tinycnn", 2);
  jsvm::restore_snapshot(server.interp(), snap.program);
  server.interp().eval_program("var scores = model.inference_rear(feature);");
  auto net = nn::build_tiny_cnn(17);
  auto expected = net->forward(test_image()).output;
  auto scores = std::get<jsvm::TypedArrayPtr>(
      *server.interp().globals()->find("scores"));
  EXPECT_EQ(scores->data[0], expected[0]);
}

TEST(ProtocolTest, ModelFilesPayloadRoundTrip) {
  ModelFilesPayload p;
  p.files.push_back({"m.desc", {1, 2}});
  p.files.push_back({"m.weights", {3, 4, 5}});
  auto wire = p.encode();
  ModelFilesPayload d = ModelFilesPayload::decode(std::span(wire));
  ASSERT_EQ(d.files.size(), 2u);
  EXPECT_EQ(d.files[1].name, "m.weights");
  EXPECT_EQ(d.files[1].content, (util::Bytes{3, 4, 5}));
}

TEST(ProtocolTest, SnapshotPayloadRoundTrip) {
  SnapshotPayload p;
  p.cut = 7;
  p.program = "(function(){})();";
  auto wire = p.encode();
  SnapshotPayload d = SnapshotPayload::decode(std::span(wire));
  EXPECT_EQ(d.cut, 7u);
  EXPECT_EQ(d.program, p.program);
}

TEST(ProtocolTest, PayloadCrcDetectsCorruption) {
  net::Message m;
  m.type = net::MessageType::kSnapshot;
  m.name = "tiny";
  m.payload = {1, 2, 3, 4, 5};
  m.crc = util::crc32(std::span<const std::uint8_t>(m.payload));
  EXPECT_TRUE(payload_intact(m));
  EXPECT_NO_THROW(verify_payload(m));

  m.payload[2] ^= 0x40;  // damaged in flight; the stamped CRC is stale
  EXPECT_FALSE(payload_intact(m));
  EXPECT_THROW(verify_payload(m), PayloadCorruptError);

  net::Message empty;  // payload-free messages are trivially intact
  EXPECT_TRUE(payload_intact(empty));
}

}  // namespace
}  // namespace offload::edge
