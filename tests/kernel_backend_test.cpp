// Differential kernel-backend harness (DESIGN §11). This is the contract
// that lets the simd and int8 backends exist at all:
//
//   * fp32 (scalar vs simd): bit-exact, element for element, at any thread
//     count — asserted over 280 seeded fuzz cases spanning conv (grouped,
//     strided, padded, odd channel counts), fc (ragged and vector-aligned
//     dims), max/avg pool, LRN and ReLU;
//   * int8: within the per-layer analytic quantization-error bound
//     (src/nn/quant.h) of the fp32 reference, and bit-deterministic —
//     identical across thread counts, backends sharing the int8 kernels,
//     and batched vs per-sample execution;
//   * end to end: GoogLeNet / AgeNet / GenderNet under int8 reproduce the
//     fp32 top-1 class on seeded inputs within a documented max-abs output
//     delta (golden: tests/golden/int8_accuracy.txt, regenerate with
//     OFFLOAD_UPDATE_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/cost_model.h"
#include "src/nn/dense.h"
#include "src/nn/device.h"
#include "src/nn/kernels.h"
#include "src/nn/lrn.h"
#include "src/nn/models.h"
#include "src/nn/network.h"
#include "src/nn/partition.h"
#include "src/nn/pool.h"
#include "src/nn/quant.h"
#include "src/nn/tensor.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace {

using offload::nn::KernelBackend;
using offload::nn::Shape;
using offload::nn::Tensor;

struct PoolGuard {
  ~PoolGuard() { offload::util::set_default_pool_threads(0); }
};

bool bit_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

Tensor run_layer(const offload::nn::Layer& layer, const Tensor& in,
                 KernelBackend k) {
  offload::nn::ScopedKernelBackend scoped(k);
  const Tensor* ins[] = {&in};
  return layer.forward(ins);
}

Tensor run_layer_batch(const offload::nn::Layer& layer, const Tensor& stacked,
                       std::int64_t batch, KernelBackend k) {
  offload::nn::ScopedKernelBackend scoped(k);
  const Tensor* ins[] = {&stacked};
  return layer.forward_batch(ins, batch);
}

std::int64_t draw(offload::util::Pcg32& rng, std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  rng.next_below(static_cast<std::uint32_t>(hi - lo + 1)));
}

// ---------------------------------------------------------------- registry

TEST(KernelRegistryTest, NamesAndParse) {
  using offload::nn::parse_kernel_backend;
  EXPECT_STREQ(offload::nn::kernel_backend_name(KernelBackend::kScalar),
               "scalar");
  EXPECT_STREQ(offload::nn::kernel_backend_name(KernelBackend::kSimd), "simd");
  EXPECT_STREQ(offload::nn::kernel_backend_name(KernelBackend::kInt8), "int8");
  EXPECT_EQ(parse_kernel_backend("scalar"), KernelBackend::kScalar);
  EXPECT_EQ(parse_kernel_backend("fp32"), KernelBackend::kScalar);
  EXPECT_EQ(parse_kernel_backend("simd"), KernelBackend::kSimd);
  EXPECT_EQ(parse_kernel_backend("vector"), KernelBackend::kSimd);
  EXPECT_EQ(parse_kernel_backend("int8"), KernelBackend::kInt8);
  EXPECT_EQ(parse_kernel_backend("quant"), KernelBackend::kInt8);
  EXPECT_FALSE(parse_kernel_backend("avx9000").has_value());
  EXPECT_FALSE(parse_kernel_backend("").has_value());
}

TEST(KernelRegistryTest, SetAndScopedRestore) {
  const KernelBackend before = offload::nn::active_kernel_backend();
  {
    offload::nn::ScopedKernelBackend scoped(KernelBackend::kSimd);
    EXPECT_EQ(offload::nn::active_kernel_backend(), KernelBackend::kSimd);
    {
      offload::nn::ScopedKernelBackend inner(KernelBackend::kInt8);
      EXPECT_EQ(offload::nn::active_kernel_backend(), KernelBackend::kInt8);
      EXPECT_TRUE(offload::nn::active_kernel_ops().quantized);
    }
    EXPECT_EQ(offload::nn::active_kernel_backend(), KernelBackend::kSimd);
  }
  EXPECT_EQ(offload::nn::active_kernel_backend(), before);
}

TEST(KernelRegistryTest, TablesWellFormed) {
  for (KernelBackend k : {KernelBackend::kScalar, KernelBackend::kSimd,
                          KernelBackend::kInt8}) {
    const offload::nn::KernelOps& ops = offload::nn::kernel_ops(k);
    EXPECT_EQ(ops.kind, k);
    EXPECT_STREQ(ops.name, offload::nn::kernel_backend_name(k));
    EXPECT_EQ(ops.quantized, k == KernelBackend::kInt8);
    EXPECT_NE(ops.gemm_tile, nullptr);
    EXPECT_NE(ops.gemm_tile_i8, nullptr);
    EXPECT_NE(ops.fc_rows, nullptr);
    EXPECT_NE(ops.fc_rows_i8, nullptr);
    EXPECT_NE(ops.relu_range, nullptr);
    EXPECT_NE(ops.pool_plane, nullptr);
    EXPECT_NE(ops.lrn_row, nullptr);
    // The layer's macro-tile geometry (64x512) must be divisible by every
    // micro-kernel tile so row/column blocking never splits a panel.
    EXPECT_EQ(64 % ops.gemm_mr, 0) << ops.name;
    EXPECT_EQ(512 % ops.gemm_nr, 0) << ops.name;
    EXPECT_GT(ops.fc_block, 0) << ops.name;
  }
  // int8 shares the simd table's fp32 kernels for the non-GEMM layers.
  const auto& simd = offload::nn::kernel_ops(KernelBackend::kSimd);
  const auto& int8 = offload::nn::kernel_ops(KernelBackend::kInt8);
  EXPECT_EQ(int8.pool_plane, simd.pool_plane);
  EXPECT_EQ(int8.lrn_row, simd.lrn_row);
  EXPECT_EQ(int8.relu_range, simd.relu_range);
}

// ------------------------------------------------------------ conv fuzz

struct ConvCase {
  std::int64_t C, H, W, M, K, S, P, G;
  std::string str() const {
    std::ostringstream os;
    os << "conv C=" << C << " HxW=" << H << "x" << W << " M=" << M
       << " K=" << K << " S=" << S << " P=" << P << " G=" << G;
    return os.str();
  }
};

ConvCase draw_conv_case(offload::util::Pcg32& rng, int idx) {
  ConvCase cc;
  cc.K = draw(rng, 1, 5);
  cc.S = draw(rng, 1, 3);
  cc.P = draw(rng, 0, cc.K - 1);
  if (idx % 4 == 1) {
    // Grouped (AlexNet/AgeNet style): G in [2,4], per-group channels small.
    cc.G = draw(rng, 2, 4);
    cc.C = cc.G * draw(rng, 1, 5);
    cc.M = cc.G * draw(rng, 1, 6);
  } else {
    cc.G = 1;
    cc.C = draw(rng, 1, 17);
    cc.M = draw(rng, 1, 33);  // crosses the 4- and 8-row panel boundaries
    if (idx % 4 == 3) {       // force odd channel counts
      cc.C |= 1;
      cc.M |= 1;
    }
  }
  cc.H = cc.K + draw(rng, 0, 13);  // guarantees at least one output row
  cc.W = cc.K + draw(rng, 0, 13);
  return cc;
}

offload::nn::ConvConfig to_config(const ConvCase& cc) {
  offload::nn::ConvConfig cfg;
  cfg.in_channels = cc.C;
  cfg.out_channels = cc.M;
  cfg.kernel = cc.K;
  cfg.stride = cc.S;
  cfg.pad = cc.P;
  cfg.groups = cc.G;
  return cfg;
}

// 96 cases x {scalar@4, simd@1, simd@4} against scalar@1: backend AND
// thread-count invariance in one sweep.
TEST(ConvFuzzTest, SimdMatchesScalarBitExact) {
  PoolGuard guard;
  offload::util::Pcg32 rng(0xC04Fu);
  for (int idx = 0; idx < 96; ++idx) {
    const ConvCase cc = draw_conv_case(rng, idx);
    SCOPED_TRACE(cc.str() + " [case " + std::to_string(idx) + "]");
    offload::nn::ConvLayer layer("c", to_config(cc));
    offload::util::Pcg32 prng(1000 + idx);
    layer.init_params(prng);
    const Tensor in = Tensor::random_uniform({cc.C, cc.H, cc.W}, prng);

    offload::util::set_default_pool_threads(1);
    const Tensor ref = run_layer(layer, in, KernelBackend::kScalar);
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kSimd)));
    offload::util::set_default_pool_threads(4);
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kScalar)));
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kSimd)));
  }
}

// 48 cases: int8 stays inside the analytic per-layer quantization bound of
// the fp32 reference and is bit-deterministic across thread counts.
TEST(ConvFuzzTest, Int8WithinQuantBound) {
  PoolGuard guard;
  offload::util::Pcg32 rng(0x18C0u);
  for (int idx = 0; idx < 48; ++idx) {
    const ConvCase cc = draw_conv_case(rng, idx);
    SCOPED_TRACE(cc.str() + " [case " + std::to_string(idx) + "]");
    offload::nn::ConvLayer layer("c", to_config(cc));
    offload::util::Pcg32 prng(2000 + idx);
    layer.init_params(prng);
    const Tensor in = Tensor::random_uniform({cc.C, cc.H, cc.W}, prng);

    offload::util::set_default_pool_threads(1);
    const Tensor ref = run_layer(layer, in, KernelBackend::kScalar);
    const Tensor q1 = run_layer(layer, in, KernelBackend::kInt8);
    offload::util::set_default_pool_threads(4);
    const Tensor q4 = run_layer(layer, in, KernelBackend::kInt8);
    EXPECT_TRUE(bit_equal(q1, q4)) << "int8 must be thread-invariant";

    const float w_amax = offload::nn::max_abs(layer.weights().data());
    const float x_amax = offload::nn::max_abs(in.data());
    const std::int64_t depth = (cc.C / cc.G) * cc.K * cc.K;
    const float bound = offload::nn::int8_error_bound(depth, w_amax, x_amax);
    EXPECT_LE(Tensor::max_abs_diff(ref, q1), bound);
  }
}

// -------------------------------------------------------------- fc fuzz

std::int64_t draw_fc_dim(offload::util::Pcg32& rng, int idx,
                         std::int64_t cap) {
  // Half the draws hit vector-critical dims (panel edges, lane multiples),
  // half are free-range (ragged blocks, scalar tails).
  static constexpr std::int64_t kEdge[] = {1,  3,  7,  8,  15, 16, 17, 24,
                                           31, 32, 33, 48, 64, 100, 128};
  if (idx % 2 == 0) {
    return kEdge[rng.next_below(sizeof(kEdge) / sizeof(kEdge[0]))];
  }
  return draw(rng, 1, cap);
}

TEST(FcFuzzTest, SimdMatchesScalarBitExact) {
  PoolGuard guard;
  offload::util::Pcg32 rng(0xFCFCu);
  for (int idx = 0; idx < 40; ++idx) {
    const std::int64_t in_dim = draw_fc_dim(rng, idx, 150);
    const std::int64_t out_dim = draw_fc_dim(rng, idx + 1, 70);
    SCOPED_TRACE("fc " + std::to_string(in_dim) + "->" +
                 std::to_string(out_dim) + " [case " + std::to_string(idx) +
                 "]");
    offload::nn::FullyConnectedLayer layer("fc", in_dim, out_dim);
    offload::util::Pcg32 prng(3000 + idx);
    layer.init_params(prng);
    const Tensor in = Tensor::random_uniform({in_dim}, prng);

    offload::util::set_default_pool_threads(1);
    const Tensor ref = run_layer(layer, in, KernelBackend::kScalar);
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kSimd)));
    offload::util::set_default_pool_threads(4);
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kScalar)));
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kSimd)));
  }
}

TEST(FcFuzzTest, Int8WithinQuantBound) {
  PoolGuard guard;
  offload::util::Pcg32 rng(0x18FCu);
  for (int idx = 0; idx < 24; ++idx) {
    const std::int64_t in_dim = draw_fc_dim(rng, idx, 150);
    const std::int64_t out_dim = draw_fc_dim(rng, idx + 1, 70);
    SCOPED_TRACE("fc " + std::to_string(in_dim) + "->" +
                 std::to_string(out_dim) + " [case " + std::to_string(idx) +
                 "]");
    offload::nn::FullyConnectedLayer layer("fc", in_dim, out_dim);
    offload::util::Pcg32 prng(4000 + idx);
    layer.init_params(prng);
    const Tensor in = Tensor::random_uniform({in_dim}, prng);

    offload::util::set_default_pool_threads(1);
    const Tensor ref = run_layer(layer, in, KernelBackend::kScalar);
    const Tensor q1 = run_layer(layer, in, KernelBackend::kInt8);
    offload::util::set_default_pool_threads(4);
    const Tensor q4 = run_layer(layer, in, KernelBackend::kInt8);
    EXPECT_TRUE(bit_equal(q1, q4));

    const float w_amax = offload::nn::max_abs(layer.weights().data());
    const float x_amax = offload::nn::max_abs(in.data());
    const float bound = offload::nn::int8_error_bound(in_dim, w_amax, x_amax);
    EXPECT_LE(Tensor::max_abs_diff(ref, q1), bound);
  }
}

// -------------------------------------------- pool / lrn / relu fuzz

// 36 cases: pooling is fp32 under every backend, so all three must agree
// bit-for-bit (the int8 table runs the simd pool kernel).
TEST(PoolFuzzTest, AllBackendsBitExact) {
  PoolGuard guard;
  offload::util::Pcg32 rng(0xB001u);
  for (int idx = 0; idx < 36; ++idx) {
    offload::nn::PoolConfig cfg;
    cfg.kernel = draw(rng, 1, 4);
    cfg.stride = draw(rng, 1, 3);
    cfg.pad = draw(rng, 0, cfg.kernel - 1);
    const bool average = idx % 2 == 1;
    const std::int64_t C = draw(rng, 1, 9);
    const std::int64_t H = cfg.kernel + draw(rng, 0, 12);
    const std::int64_t W = cfg.kernel + draw(rng, 0, 12);
    SCOPED_TRACE((average ? "avg" : "max") +
                 std::string(" pool k=") + std::to_string(cfg.kernel) +
                 " s=" + std::to_string(cfg.stride) +
                 " p=" + std::to_string(cfg.pad) + " C=" + std::to_string(C) +
                 " HxW=" + std::to_string(H) + "x" + std::to_string(W) +
                 " [case " + std::to_string(idx) + "]");
    offload::nn::PoolLayer layer("p", cfg, average);
    offload::util::Pcg32 prng(5000 + idx);
    const Tensor in = Tensor::random_uniform({C, H, W}, prng);

    offload::util::set_default_pool_threads(1);
    const Tensor ref = run_layer(layer, in, KernelBackend::kScalar);
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kSimd)));
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kInt8)));
    offload::util::set_default_pool_threads(4);
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kScalar)));
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kSimd)));
  }
}

// 24 cases: the LRN square-sum runs in double precision (products of
// float-valued doubles are exact), so vectorization cannot change a bit.
TEST(LrnFuzzTest, AllBackendsBitExact) {
  PoolGuard guard;
  offload::util::Pcg32 rng(0x14A4u);
  for (int idx = 0; idx < 24; ++idx) {
    offload::nn::LrnConfig cfg;
    cfg.local_size = idx % 2 == 0 ? 5 : 3;
    const std::int64_t C = draw(rng, 1, 21);
    const std::int64_t H = draw(rng, 1, 9);
    const std::int64_t W = draw(rng, 1, 13);  // covers W<4 scalar tails
    SCOPED_TRACE("lrn n=" + std::to_string(cfg.local_size) +
                 " C=" + std::to_string(C) + " HxW=" + std::to_string(H) +
                 "x" + std::to_string(W) + " [case " + std::to_string(idx) +
                 "]");
    offload::nn::LrnLayer layer("l", cfg);
    offload::util::Pcg32 prng(6000 + idx);
    const Tensor in = Tensor::random_uniform({C, H, W}, prng);

    offload::util::set_default_pool_threads(1);
    const Tensor ref = run_layer(layer, in, KernelBackend::kScalar);
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kSimd)));
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kInt8)));
    offload::util::set_default_pool_threads(4);
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kSimd)));
  }
}

// 12 cases: sizes crossing the 8-lane vector width and the parallel grain.
TEST(ReluFuzzTest, AllBackendsBitExact) {
  PoolGuard guard;
  offload::util::Pcg32 rng(0x4E10u);
  for (int idx = 0; idx < 12; ++idx) {
    const std::int64_t n = draw(rng, 1, 100'000);
    SCOPED_TRACE("relu n=" + std::to_string(n) + " [case " +
                 std::to_string(idx) + "]");
    offload::nn::ReluLayer layer("r");
    offload::util::Pcg32 prng(7000 + idx);
    const Tensor in = Tensor::random_uniform({n}, prng);

    offload::util::set_default_pool_threads(1);
    const Tensor ref = run_layer(layer, in, KernelBackend::kScalar);
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kSimd)));
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kInt8)));
    offload::util::set_default_pool_threads(4);
    EXPECT_TRUE(bit_equal(ref, run_layer(layer, in, KernelBackend::kSimd)));
  }
}

// ------------------------------------------- int8 ops-table cross-checks
//
// The backend enum cannot select "int8 over scalar kernels" at layer level,
// so the scalar-vs-simd agreement of the *quantized* kernels is pinned here
// directly against the ops tables, on identical packed buffers.

std::int8_t draw_i8(offload::util::Pcg32& rng) {
  return static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) - 127);
}

TEST(OpsTableTest, Int8GemmTileBitExactAcrossBackends) {
  const auto& sc = offload::nn::kernel_ops(KernelBackend::kScalar);
  const auto& qt = offload::nn::kernel_ops(KernelBackend::kInt8);
  offload::util::Pcg32 rng(0x8EAAu);
  for (int it = 0; it < 8; ++it) {
    const std::int64_t kd = draw(rng, 1, 60);
    const std::int64_t m = draw(rng, 1, 30);
    const std::int64_t n = draw(rng, 1, 40);
    SCOPED_TRACE("igemm kd=" + std::to_string(kd) + " m=" + std::to_string(m) +
                 " n=" + std::to_string(n));
    std::vector<std::int8_t> w(static_cast<std::size_t>(m * kd));
    std::vector<std::int8_t> b(static_cast<std::size_t>(kd * n));
    for (auto& v : w) v = draw_i8(rng);
    for (auto& v : b) v = draw_i8(rng);
    constexpr std::int64_t kMRq = 4;  // int8 panels always pack mr=4
    const std::int64_t tiles = (m + kMRq - 1) / kMRq;
    std::vector<std::int8_t> panels(
        static_cast<std::size_t>(tiles * kd * kMRq), 0);
    offload::nn::pack_gemm_panels_i8(w.data(), 1, m, kd, kMRq, panels.data());
    std::vector<float> bias(static_cast<std::size_t>(m));
    for (auto& v : bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float dequant = static_cast<float>(rng.uniform(1e-4, 1e-2));
    std::vector<float> c1(static_cast<std::size_t>(m * n), -1.0f);
    std::vector<float> c2(static_cast<std::size_t>(m * n), -2.0f);
    sc.gemm_tile_i8(panels.data(), kd, b.data(), n, bias.data(), dequant,
                    c1.data(), m, 0, m, 0, n);
    qt.gemm_tile_i8(panels.data(), kd, b.data(), n, bias.data(), dequant,
                    c2.data(), m, 0, m, 0, n);
    EXPECT_EQ(std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)), 0);
  }
}

TEST(OpsTableTest, Int8FcRowsBitExactAcrossBackends) {
  const auto& sc = offload::nn::kernel_ops(KernelBackend::kScalar);
  const auto& qt = offload::nn::kernel_ops(KernelBackend::kInt8);
  offload::util::Pcg32 rng(0x8FCCu);
  for (int it = 0; it < 8; ++it) {
    const std::int64_t in = draw(rng, 1, 120);
    const std::int64_t out = draw(rng, 1, 50);
    SCOPED_TRACE("ifc " + std::to_string(in) + "->" + std::to_string(out));
    std::vector<std::int8_t> qw(static_cast<std::size_t>(out * in));
    std::vector<std::int8_t> qx(static_cast<std::size_t>(in));
    for (auto& v : qw) v = draw_i8(rng);
    for (auto& v : qx) v = draw_i8(rng);
    std::vector<float> bias(static_cast<std::size_t>(out));
    for (auto& v : bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float dequant = static_cast<float>(rng.uniform(1e-4, 1e-2));
    std::vector<float> y1(static_cast<std::size_t>(out), -1.0f);
    std::vector<float> y2(static_cast<std::size_t>(out), -2.0f);
    sc.fc_rows_i8(qw.data(), in, qx.data(), bias.data(), dequant, y1.data(), 0,
                  out);
    qt.fc_rows_i8(qw.data(), in, qx.data(), bias.data(), dequant, y2.data(), 0,
                  out);
    EXPECT_EQ(std::memcmp(y1.data(), y2.data(), y1.size() * sizeof(float)), 0);
  }
}

// --------------------------------------------------- batched == stacked

TEST(BatchConsistencyTest, ConvBatchedMatchesPerSampleEveryBackend) {
  PoolGuard guard;
  offload::util::set_default_pool_threads(4);
  ConvCase cc{10, 9, 11, 9, 3, 2, 1, 1};  // odd channels, strided, padded
  offload::nn::ConvLayer layer("c", to_config(cc));
  offload::util::Pcg32 prng(8100);
  layer.init_params(prng);
  std::vector<Tensor> samples;
  for (int b = 0; b < 3; ++b) {
    samples.push_back(Tensor::random_uniform({cc.C, cc.H, cc.W}, prng));
  }
  const Tensor stacked = Tensor::stack(samples);
  for (KernelBackend k : {KernelBackend::kScalar, KernelBackend::kSimd,
                          KernelBackend::kInt8}) {
    SCOPED_TRACE(offload::nn::kernel_backend_name(k));
    const Tensor batched = run_layer_batch(layer, stacked, 3, k);
    for (int b = 0; b < 3; ++b) {
      EXPECT_TRUE(bit_equal(batched.sample(b), run_layer(layer, samples[b], k)))
          << "sample " << b;
    }
  }
}

TEST(BatchConsistencyTest, FcBatchedMatchesPerSampleEveryBackend) {
  PoolGuard guard;
  offload::util::set_default_pool_threads(4);
  offload::nn::FullyConnectedLayer layer("fc", 77, 23);  // ragged both dims
  offload::util::Pcg32 prng(8200);
  layer.init_params(prng);
  std::vector<Tensor> samples;
  for (int b = 0; b < 3; ++b) {
    samples.push_back(Tensor::random_uniform({std::int64_t{77}}, prng));
  }
  const Tensor stacked = Tensor::stack(samples);
  for (KernelBackend k : {KernelBackend::kScalar, KernelBackend::kSimd,
                          KernelBackend::kInt8}) {
    SCOPED_TRACE(offload::nn::kernel_backend_name(k));
    const Tensor batched = run_layer_batch(layer, stacked, 3, k);
    for (int b = 0; b < 3; ++b) {
      EXPECT_TRUE(bit_equal(batched.sample(b), run_layer(layer, samples[b], k)))
          << "sample " << b;
    }
  }
}

// --------------------------------------------------- whole-network gates

TEST(NetworkBackendTest, TinyCnnFp32BackendsBitExact) {
  PoolGuard guard;
  auto net = offload::nn::build_tiny_cnn(17);
  offload::util::Pcg32 rng(8300);
  const Tensor in = Tensor::random_uniform({3, 32, 32}, rng);

  offload::util::set_default_pool_threads(1);
  Tensor ref, simd1, scalar4, simd4;
  {
    offload::nn::ScopedKernelBackend scoped(KernelBackend::kScalar);
    ref = net->forward(in).output;
  }
  {
    offload::nn::ScopedKernelBackend scoped(KernelBackend::kSimd);
    simd1 = net->forward(in).output;
  }
  offload::util::set_default_pool_threads(4);
  {
    offload::nn::ScopedKernelBackend scoped(KernelBackend::kScalar);
    scalar4 = net->forward(in).output;
  }
  {
    offload::nn::ScopedKernelBackend scoped(KernelBackend::kSimd);
    simd4 = net->forward(in).output;
  }
  EXPECT_TRUE(bit_equal(ref, simd1));
  EXPECT_TRUE(bit_equal(ref, scalar4));
  EXPECT_TRUE(bit_equal(ref, simd4));
}

TEST(NetworkBackendTest, TinyCnnBatchedMatchesPerSampleEveryBackend) {
  PoolGuard guard;
  offload::util::set_default_pool_threads(4);
  auto net = offload::nn::build_tiny_cnn(17);
  offload::util::Pcg32 rng(8400);
  std::vector<Tensor> samples;
  for (int b = 0; b < 2; ++b) {
    samples.push_back(Tensor::random_uniform({3, 32, 32}, rng));
  }
  const Tensor stacked = Tensor::stack(samples);
  for (KernelBackend k : {KernelBackend::kScalar, KernelBackend::kSimd,
                          KernelBackend::kInt8}) {
    SCOPED_TRACE(offload::nn::kernel_backend_name(k));
    offload::nn::ScopedKernelBackend scoped(k);
    const Tensor batched = net->forward_batch(stacked);
    for (int b = 0; b < 2; ++b) {
      EXPECT_TRUE(
          bit_equal(batched.sample(b), net->forward(samples[b]).output))
          << "sample " << b;
    }
  }
}

// ------------------------------------------------ E2E int8 accuracy gate
//
// The documented end-to-end bound: over the three benchmark models (final
// layer = softmax, outputs in [0,1]), int8 may move any class probability
// by at most this much. Measured max on the seeded inputs is ~2e-3; the
// gate leaves ~5x headroom for libm variation in pow/exp.
constexpr float kE2eDeltaBound = 1e-2f;

TEST(Int8AccuracyTest, BenchmarkModelsMatchFp32Top1) {
  PoolGuard guard;
  offload::util::set_default_pool_threads(4);
  std::ostringstream report;
  for (const auto& bm : offload::nn::benchmark_models()) {
    if (std::string(bm.app_name) == "TinyCNN") continue;
    SCOPED_TRACE(bm.app_name);
    auto net = bm.build(bm.seed);
    offload::util::Pcg32 rng(bm.seed ^ 0x5EEDu);
    const Tensor in =
        Tensor::random_uniform({3, bm.input_hw, bm.input_hw}, rng);
    Tensor fp32, int8;
    {
      offload::nn::ScopedKernelBackend scoped(KernelBackend::kScalar);
      fp32 = net->forward(in).output;
    }
    {
      offload::nn::ScopedKernelBackend scoped(KernelBackend::kInt8);
      int8 = net->forward(in).output;
    }
    const float delta = Tensor::max_abs_diff(fp32, int8);
    EXPECT_LE(delta, kE2eDeltaBound);
    EXPECT_EQ(fp32.argmax(), int8.argmax());
    report << bm.app_name << " fp32_top1=" << fp32.argmax()
           << " int8_top1=" << int8.argmax() << "\n";
  }
  // Golden pins the per-model top-1 indices (libm-stable integers, not raw
  // float deltas) so a quantization regression that flips the prediction
  // fails even if it slips under the delta bound.
  const std::string golden_path =
      std::string(KB_GOLDEN_DIR) + "/int8_accuracy.txt";
  if (std::getenv("OFFLOAD_UPDATE_GOLDEN")) {
    std::ofstream(golden_path) << report.str();
  } else {
    std::ifstream f(golden_path);
    ASSERT_TRUE(f.good()) << "missing golden " << golden_path
                          << " (regenerate with OFFLOAD_UPDATE_GOLDEN=1)";
    std::ostringstream want;
    want << f.rdbuf();
    EXPECT_EQ(report.str(), want.str());
  }
}

// --------------------------------------------- device / partition effect

TEST(DeviceBackendTest, ForKernelBackendScalarIsIdentity) {
  const auto base = offload::nn::DeviceProfile::edge_server();
  const auto same = base.for_kernel_backend(KernelBackend::kScalar);
  EXPECT_EQ(same.name, base.name);
  EXPECT_EQ(same.gflops, base.gflops);
}

TEST(DeviceBackendTest, ForKernelBackendScalesDenseAndLightLayers) {
  using offload::nn::LayerKind;
  const auto base = offload::nn::DeviceProfile::edge_server();
  const auto simd = base.for_kernel_backend(KernelBackend::kSimd);
  const auto int8 = base.for_kernel_backend(KernelBackend::kInt8);
  const auto kind = [](LayerKind k) { return static_cast<std::size_t>(k); };
  EXPECT_DOUBLE_EQ(simd.gflops[kind(LayerKind::kConv)],
                   base.gflops[kind(LayerKind::kConv)] * base.simd_dense_gain);
  EXPECT_DOUBLE_EQ(
      simd.gflops[kind(LayerKind::kMaxPool)],
      base.gflops[kind(LayerKind::kMaxPool)] * base.simd_light_gain);
  EXPECT_DOUBLE_EQ(
      int8.gflops[kind(LayerKind::kFullyConnected)],
      base.gflops[kind(LayerKind::kFullyConnected)] * base.int8_dense_gain);
  EXPECT_EQ(simd.name, base.name + "+simd");
  EXPECT_EQ(int8.name, base.name + "+int8");
  EXPECT_GT(base.int8_dense_gain, base.simd_dense_gain);
  EXPECT_LT(base.int8_fidelity, 1.0);
  // The WebGL profile models GPU execution — CPU backends change nothing.
  const auto gpu = offload::nn::DeviceProfile::edge_server_gpu();
  EXPECT_EQ(gpu.for_kernel_backend(KernelBackend::kInt8).gflops, gpu.gflops);
}

// A quantized client runs its front layers faster, so the optimal cut
// moves deeper into the network (or stays put) and the predicted total
// drops — the signal ctrl uses to re-pick the partition per backend.
TEST(DeviceBackendTest, Int8ClientShiftsPartitionTowardClient) {
  auto net = offload::nn::build_googlenet(7);
  const offload::nn::Network* nets[] = {net.get()};
  const auto client = offload::nn::DeviceProfile::embedded_client();
  const auto server = offload::nn::DeviceProfile::edge_server();
  const auto client_model =
      offload::nn::LayerCostModel::profile_device(client, nets);
  const auto client_i8 = offload::nn::LayerCostModel::profile_device(
      client.for_kernel_backend(KernelBackend::kInt8), nets);
  const auto server_model =
      offload::nn::LayerCostModel::profile_device(server, nets);

  EXPECT_LT(client_i8.predict_network(*net),
            client_model.predict_network(*net));

  const offload::nn::Partitioner base(*net, client_model, server_model);
  const offload::nn::Partitioner quant(*net, client_i8, server_model);
  const double bw = 10e6;  // 10 Mbps uplink, 20 ms RTT
  const auto best_base = base.best(bw, 0.02);
  const auto best_quant = quant.best(bw, 0.02);
  EXPECT_GE(best_quant.cut, best_base.cut);
  EXPECT_LE(best_quant.total_s(), best_base.total_s());
}

}  // namespace
