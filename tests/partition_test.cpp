// Tests for the Neurosurgeon-style cost model and the partition-point
// optimizer (Section III.B.2 mechanics).
#include <gtest/gtest.h>

#include "src/nn/cost_model.h"
#include "src/nn/models.h"
#include "src/core/experiment.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/dense.h"
#include "src/nn/partition.h"

namespace offload::nn {
namespace {

LayerCostModel fitted_model(const DeviceProfile& device) {
  auto tiny = build_tiny_cnn(1);
  auto age = build_agenet(2);
  const Network* nets[] = {tiny.get(), age.get()};
  return LayerCostModel::profile_device(device, nets);
}

TEST(CostModel, RecoversProfileThroughput) {
  DeviceProfile client = DeviceProfile::embedded_client();
  LayerCostModel model = fitted_model(client);
  auto gender = build_gendernet(3);  // unseen network
  double predicted = model.predict_network(*gender);
  double actual = client.network_time_s(*gender);
  EXPECT_NEAR(predicted / actual, 1.0, 0.05);
}

TEST(CostModel, PredictBeforeFitThrows) {
  LayerCostModel model;
  EXPECT_THROW(model.predict(LayerKind::kConv, 1000), std::logic_error);
}

TEST(CostModel, UnseenKindFallsBackToGlobalFit) {
  LayerCostModel model;
  model.add_sample(LayerKind::kConv, 1'000'000, 0.01);
  model.add_sample(LayerKind::kConv, 2'000'000, 0.02);
  model.fit();
  EXPECT_FALSE(model.fitted(LayerKind::kLRN));
  // Still predicts something sensible via the global regression.
  EXPECT_NEAR(model.predict(LayerKind::kLRN, 1'500'000), 0.015, 0.003);
}

TEST(CostModel, MonotoneInFlops) {
  LayerCostModel model = fitted_model(DeviceProfile::embedded_client());
  EXPECT_LE(model.predict(LayerKind::kConv, 1'000'000),
            model.predict(LayerKind::kConv, 10'000'000));
}

TEST(CostModel, ServerFasterThanClient) {
  LayerCostModel client = fitted_model(DeviceProfile::embedded_client());
  LayerCostModel server = fitted_model(DeviceProfile::edge_server());
  auto net = build_agenet(5);
  EXPECT_GT(client.predict_network(*net), 5 * server.predict_network(*net));
}

class PartitionerTest : public ::testing::Test {
 protected:
  PartitionerTest()
      : net_(build_tiny_cnn(9)),
        client_(fitted_model(DeviceProfile::embedded_client())),
        server_(fitted_model(DeviceProfile::edge_server())) {}

  std::unique_ptr<Network> net_;
  LayerCostModel client_;
  LayerCostModel server_;
};

TEST_F(PartitionerTest, CandidatesCoverAllCutPoints) {
  Partitioner part(*net_, client_, server_);
  auto candidates = part.evaluate(30e6, 0.001);
  EXPECT_EQ(candidates.size(), net_->cut_points().size());
  EXPECT_EQ(candidates.front().cut, 0u);
  EXPECT_EQ(candidates.back().cut, net_->size() - 1);
  // Input cut does not denature; later cuts do.
  EXPECT_FALSE(candidates.front().denatures);
  EXPECT_TRUE(candidates.back().denatures);
}

TEST_F(PartitionerTest, BestIsActuallyMinimal) {
  PartitionerOptions opts;
  opts.require_denature = false;
  Partitioner part(*net_, client_, server_, opts);
  auto candidates = part.evaluate(30e6, 0.001);
  PartitionCandidate best = part.best(30e6, 0.001);
  for (const auto& c : candidates) {
    EXPECT_GE(c.total_s(), best.total_s() - 1e-12);
  }
}

TEST_F(PartitionerTest, DenatureConstraintExcludesInput) {
  PartitionerOptions opts;
  opts.require_denature = true;
  Partitioner part(*net_, client_, server_, opts);
  PartitionCandidate best = part.best(30e6, 0.001);
  EXPECT_TRUE(best.denatures);
  EXPECT_NE(best.cut, 0u);
}

TEST_F(PartitionerTest, TerribleNetworkPrefersLocalExecution) {
  Partitioner part(*net_, client_, server_);
  PartitionCandidate best = part.best(1e3, 0.5);  // 1 kbps, 500 ms
  EXPECT_EQ(best.cut, net_->size() - 1);  // fully local
}

TEST_F(PartitionerTest, FastNetworkPrefersEarlyOffload) {
  PartitionerOptions opts;
  opts.require_denature = false;
  Partitioner part(*net_, client_, server_, opts);
  PartitionCandidate best = part.best(10e9, 1e-6);  // 10 Gbps LAN
  // With a near-free network, ship everything to the fast server.
  EXPECT_EQ(best.cut, 0u);
}

TEST_F(PartitionerTest, FeatureBytesTrackNetworkShapes) {
  Partitioner part(*net_, client_, server_);
  auto candidates = part.evaluate(30e6, 0.001);
  const auto& analysis = net_->analyze();
  for (const auto& c : candidates) {
    if (c.cut + 1 == net_->size()) continue;
    EXPECT_EQ(c.feature_bytes, analysis.output_bytes[c.cut]);
    EXPECT_GT(c.snapshot_bytes, c.feature_bytes);  // text expansion
  }
}

TEST_F(PartitionerTest, BadBandwidthThrows) {
  Partitioner part(*net_, client_, server_);
  EXPECT_THROW(part.evaluate(0, 0.001), std::invalid_argument);
}

TEST(Partitioner, GoogLeNetPoolBeatsConvNeighbors) {
  // The Fig. 8 sawtooth: offloading right after a pool layer beats the
  // preceding conv because pooling shrinks the feature data 4x.
  auto net = build_googlenet(7);
  LayerCostModel client = fitted_model(DeviceProfile::embedded_client());
  LayerCostModel server = fitted_model(DeviceProfile::edge_server());
  Partitioner part(*net, client, server);
  auto candidates = part.evaluate(30e6, 0.001);
  auto find = [&](const std::string& name) -> const PartitionCandidate& {
    for (const auto& c : candidates) {
      if (c.layer_name == name) return c;
    }
    throw std::runtime_error("candidate not found: " + name);
  };
  EXPECT_LT(find("pool1").total_s(), find("conv1").total_s());
  // And pool1's feature is 4x smaller than conv1's (112² vs 56² × 64ch).
  EXPECT_EQ(find("conv1").feature_bytes, 4u * find("pool1").feature_bytes);
}

// ---------------------------------------------------------------------------
// first_pool_cut fallback chain (pinned: the cut controller iterates
// candidates on arbitrary models and relies on this never throwing).

// input → conv → fc → softmax: no pooling layer anywhere.
std::unique_ptr<Network> build_poolless_net() {
  auto net = std::make_unique<Network>("poolless");
  net->add(std::make_unique<InputLayer>("data", Shape{3, 8, 8}, 1.0 / 255.0));
  net->add(std::make_unique<ConvLayer>("conv1",
                                       ConvConfig{.in_channels = 3,
                                                  .out_channels = 4,
                                                  .kernel = 3,
                                                  .stride = 1,
                                                  .pad = 1}),
           {"data"});
  net->add(std::make_unique<FullyConnectedLayer>("fc2", 4 * 8 * 8, 10),
           {"conv1"});
  net->add(std::make_unique<SoftmaxLayer>("prob"), {"fc2"});
  net->init_params(23);
  return net;
}

TEST(FirstPoolCut, PrefersFirstMaxPool) {
  auto net = build_tiny_cnn(9);
  std::size_t cut = core::first_pool_cut(*net);
  EXPECT_EQ(net->layer(cut).kind(), LayerKind::kMaxPool);
  EXPECT_EQ(net->layer(cut).name(), "pool1");
}

TEST(FirstPoolCut, NoPoolFallsBackToFirstConv) {
  auto net = build_poolless_net();
  std::size_t cut = core::first_pool_cut(*net);
  EXPECT_EQ(net->layer(cut).kind(), LayerKind::kConv);
  EXPECT_EQ(net->layer(cut).name(), "conv1");
}

TEST(FirstPoolCut, SingleNodeNetFallsBackToOnlyCutPoint) {
  // A bare input "network": its only cut point is the final (and only)
  // node, i.e. fully local. first_pool_cut must return it, not throw.
  Network net("bare");
  net.add(std::make_unique<InputLayer>("data", Shape{1, 4, 4}));
  ASSERT_EQ(net.size(), 1u);
  ASSERT_EQ(net.cut_points(), std::vector<std::size_t>{0});
  EXPECT_EQ(core::first_pool_cut(net), 0u);
}

TEST(FirstPoolCut, LabeledCutPointsCoverPaperCandidates) {
  // Labels only input/conv/pool cuts (the Fig. 8 x-axis), in order.
  auto net = build_tiny_cnn(9);
  auto labels = core::labeled_cut_points(*net);
  ASSERT_GE(labels.size(), 3u);
  EXPECT_EQ(labels.front().label, "input");
  for (const auto& l : labels) {
    LayerKind k = net->layer(l.cut).kind();
    EXPECT_TRUE(k == LayerKind::kInput || k == LayerKind::kConv ||
                k == LayerKind::kMaxPool || k == LayerKind::kAvgPool)
        << l.label;
  }
  // The poolless net still yields input + conv candidates.
  auto poolless = build_poolless_net();
  auto poolless_labels = core::labeled_cut_points(*poolless);
  ASSERT_GE(poolless_labels.size(), 2u);
  for (const auto& l : poolless_labels) {
    EXPECT_NE(poolless->layer(l.cut).kind(), LayerKind::kMaxPool);
  }
}

TEST(Partitioner, DenatureKindClassification) {
  EXPECT_TRUE(denatures_input(LayerKind::kConv));
  EXPECT_TRUE(denatures_input(LayerKind::kMaxPool));
  EXPECT_TRUE(denatures_input(LayerKind::kFullyConnected));
  EXPECT_TRUE(denatures_input(LayerKind::kLRN));
  EXPECT_FALSE(denatures_input(LayerKind::kReLU));
  EXPECT_FALSE(denatures_input(LayerKind::kInput));
  EXPECT_FALSE(denatures_input(LayerKind::kDropout));
  EXPECT_FALSE(denatures_input(LayerKind::kConcat));
}

}  // namespace
}  // namespace offload::nn
