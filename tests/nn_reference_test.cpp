// Property tests cross-checking the optimized layer kernels against naive
// reference implementations over randomized configurations. The im2col
// convolution and the pooling fast paths must agree with the textbook
// quadruple-loop versions on every sampled shape.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/conv.h"
#include "src/nn/pool.h"
#include "src/util/rng.h"

namespace offload::nn {
namespace {

Tensor reference_conv(const Tensor& in, const Tensor& weights,
                      const Tensor& bias, const ConvConfig& cfg) {
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  const std::int64_t OH = (H + 2 * cfg.pad - cfg.kernel) / cfg.stride + 1;
  const std::int64_t OW = (W + 2 * cfg.pad - cfg.kernel) / cfg.stride + 1;
  Tensor out(Shape{cfg.out_channels, OH, OW});
  for (std::int64_t m = 0; m < cfg.out_channels; ++m) {
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        float acc = bias[m];
        for (std::int64_t c = 0; c < C; ++c) {
          for (std::int64_t kh = 0; kh < cfg.kernel; ++kh) {
            for (std::int64_t kw = 0; kw < cfg.kernel; ++kw) {
              std::int64_t ih = oh * cfg.stride + kh - cfg.pad;
              std::int64_t iw = ow * cfg.stride + kw - cfg.pad;
              if (ih < 0 || ih >= H || iw < 0 || iw >= W) continue;
              float w = weights[((m * C + c) * cfg.kernel + kh) * cfg.kernel +
                                kw];
              acc += w * in.at(c, ih, iw);
            }
          }
        }
        out.at(m, oh, ow) = acc;
      }
    }
  }
  return out;
}

Tensor reference_maxpool(const Tensor& in, const PoolConfig& cfg) {
  const std::int64_t C = in.shape()[0];
  const std::int64_t H = in.shape()[1];
  const std::int64_t W = in.shape()[2];
  auto out_dim = [&](std::int64_t n) {
    std::int64_t d = (n + 2 * cfg.pad - cfg.kernel + cfg.stride - 1) /
                         cfg.stride +
                     1;
    if (cfg.pad > 0 && (d - 1) * cfg.stride >= n + cfg.pad) --d;
    return d;
  };
  const std::int64_t OH = out_dim(H);
  const std::int64_t OW = out_dim(W);
  Tensor out(Shape{C, OH, OW});
  for (std::int64_t c = 0; c < C; ++c) {
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        float best = -std::numeric_limits<float>::infinity();
        for (std::int64_t kh = 0; kh < cfg.kernel; ++kh) {
          for (std::int64_t kw = 0; kw < cfg.kernel; ++kw) {
            std::int64_t ih = oh * cfg.stride + kh - cfg.pad;
            std::int64_t iw = ow * cfg.stride + kw - cfg.pad;
            if (ih < 0 || ih >= H || iw < 0 || iw >= W) continue;
            best = std::max(best, in.at(c, ih, iw));
          }
        }
        out.at(c, oh, ow) = best;
      }
    }
  }
  return out;
}

class ConvReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvReference, MatchesNaiveImplementation) {
  util::Pcg32 rng(GetParam(), 0x636f6e76726566ULL);
  ConvConfig cfg;
  cfg.in_channels = 1 + rng.next_below(5);
  cfg.out_channels = 1 + rng.next_below(6);
  cfg.kernel = 1 + rng.next_below(5);
  cfg.stride = 1 + rng.next_below(3);
  cfg.pad = rng.next_below(3);
  std::int64_t hw =
      cfg.kernel + static_cast<std::int64_t>(rng.next_below(12));
  ConvLayer conv("c", cfg);
  conv.init_params(rng);
  Tensor in = Tensor::random_uniform(Shape{cfg.in_channels, hw, hw}, rng,
                                     -2.0f, 2.0f);
  const Tensor* ins[] = {&in};
  Tensor fast = conv.forward(ins);
  Tensor slow = reference_conv(in, conv.weights(), conv.bias(), cfg);
  ASSERT_EQ(fast.shape(), slow.shape()) << "seed=" << GetParam();
  // Same summation order → tiny numeric slack suffices.
  EXPECT_LE(Tensor::max_abs_diff(fast, slow), 1e-4f)
      << "seed=" << GetParam() << " cfg: in=" << cfg.in_channels
      << " out=" << cfg.out_channels << " k=" << cfg.kernel
      << " s=" << cfg.stride << " p=" << cfg.pad << " hw=" << hw;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConvReference,
                         ::testing::Range<std::uint64_t>(1, 41));

class PoolReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolReference, MatchesNaiveImplementation) {
  util::Pcg32 rng(GetParam(), 0x706f6f6c726566ULL);
  PoolConfig cfg;
  cfg.kernel = 2 + rng.next_below(3);
  cfg.stride = 1 + rng.next_below(3);
  cfg.pad = rng.next_below(static_cast<std::uint32_t>(cfg.kernel));
  std::int64_t c = 1 + rng.next_below(4);
  std::int64_t hw =
      cfg.kernel + static_cast<std::int64_t>(rng.next_below(14));
  PoolLayer pool("p", cfg, /*average=*/false);
  Tensor in = Tensor::random_uniform(Shape{c, hw, hw}, rng, -5.0f, 5.0f);
  const Tensor* ins[] = {&in};
  Tensor fast = pool.forward(ins);
  Tensor slow = reference_maxpool(in, cfg);
  ASSERT_EQ(fast.shape(), slow.shape())
      << "seed=" << GetParam() << " k=" << cfg.kernel << " s=" << cfg.stride
      << " p=" << cfg.pad << " hw=" << hw;
  EXPECT_EQ(Tensor::max_abs_diff(fast, slow), 0.0f) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, PoolReference,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(ConvReference, StemConfigurationExact) {
  // The GoogLeNet stem shape specifically (large stride + pad).
  util::Pcg32 rng(9);
  ConvConfig cfg{.in_channels = 3, .out_channels = 8, .kernel = 7,
                 .stride = 2, .pad = 3};
  ConvLayer conv("c", cfg);
  conv.init_params(rng);
  Tensor in = Tensor::random_uniform(Shape{3, 32, 32}, rng, 0.0f, 1.0f);
  const Tensor* ins[] = {&in};
  EXPECT_LE(Tensor::max_abs_diff(
                conv.forward(ins),
                reference_conv(in, conv.weights(), conv.bias(), cfg)),
            1e-4f);
}

}  // namespace
}  // namespace offload::nn
