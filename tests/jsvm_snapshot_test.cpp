// Tests for the snapshot engine: capture the execution state of one realm,
// restore it into a fresh realm, and verify the state — heap graph shape,
// closures, DOM, queued events — survives the round trip. This is the
// correctness core of the paper's mechanism.
#include "src/jsvm/snapshot.h"

#include <gtest/gtest.h>

#include "src/jsvm/interpreter.h"

namespace offload::jsvm {
namespace {

/// Run `source` in a fresh realm, snapshot it, restore into another fresh
/// realm, and return the restored realm.
std::unique_ptr<Interpreter> round_trip(const std::string& source,
                                        SnapshotOptions options = {},
                                        SnapshotResult* out = nullptr) {
  Interpreter a;
  a.eval_program(source);
  a.run_events();
  SnapshotResult snap = capture_snapshot(a, options);
  auto b = std::make_unique<Interpreter>();
  restore_snapshot(*b, snap.program);
  if (out) *out = std::move(snap);
  return b;
}

double global_number(Interpreter& interp, const std::string& name) {
  Value* v = interp.globals()->find(name);
  EXPECT_NE(v, nullptr) << "global " << name << " missing";
  return v ? to_number(*v) : -1;
}

std::string global_string(Interpreter& interp, const std::string& name) {
  Value* v = interp.globals()->find(name);
  EXPECT_NE(v, nullptr) << "global " << name << " missing";
  return v ? to_display_string(*v) : "<missing>";
}

TEST(Snapshot, EmptyRealmIsTiny) {
  Interpreter interp;
  SnapshotResult snap = capture_snapshot(interp);
  // Ambient globals (console, Math, document, intrinsics) are skipped.
  EXPECT_EQ(snap.stats.globals, 0u);
  EXPECT_LT(snap.stats.total_bytes, 200u);
}

TEST(Snapshot, Primitives) {
  auto b = round_trip(
      "var n = 42.5; var s = 'hello \"world\"\\n'; var t = true; "
      "var f = false; var u = undefined; var z = null; var neg = -7;");
  EXPECT_EQ(global_number(*b, "n"), 42.5);
  EXPECT_EQ(global_string(*b, "s"), "hello \"world\"\n");
  EXPECT_EQ(global_string(*b, "t"), "true");
  EXPECT_EQ(global_string(*b, "f"), "false");
  EXPECT_TRUE(is_undefined(*b->globals()->find("u")));
  EXPECT_TRUE(is_null(*b->globals()->find("z")));
  EXPECT_EQ(global_number(*b, "neg"), -7);
}

TEST(Snapshot, NumbersRoundTripExactly) {
  auto b = round_trip(
      "var tiny = 0.1; var big = 123456789.123456; var exp = 1.5e300;");
  EXPECT_EQ(global_number(*b, "tiny"), 0.1);
  EXPECT_EQ(global_number(*b, "big"), 123456789.123456);
  EXPECT_EQ(global_number(*b, "exp"), 1.5e300);
}

TEST(Snapshot, PaperExampleObject) {
  // Fig. 2/3's example: obj = {x:1, y:2} appears in the snapshot.
  SnapshotResult snap;
  auto b = round_trip("var obj = {x: 1, y: 2};", {}, &snap);
  auto obj = std::get<ObjectPtr>(*b->globals()->find("obj"));
  EXPECT_EQ(to_number(obj->get("x")), 1);
  EXPECT_EQ(to_number(obj->get("y")), 2);
  EXPECT_NE(snap.program.find("obj"), std::string::npos);
}

TEST(Snapshot, NestedObjectsAndArrays) {
  auto b = round_trip(
      "var data = {list: [1, [2, 3], {deep: 'yes'}], meta: {n: 2}};");
  EXPECT_EQ(b->eval_program("data.list[1][1];"), Value(3.0));
  EXPECT_EQ(b->eval_program("data.list[2].deep;"), Value(std::string("yes")));
  EXPECT_EQ(b->eval_program("data.meta.n;"), Value(2.0));
}

TEST(Snapshot, SharedReferenceIdentityPreserved) {
  auto b = round_trip(
      "var shared = {n: 1}; var a = {ref: shared}; var c = {ref: shared};");
  // Mutating through one reference must be visible through the other.
  b->eval_program("a.ref.n = 99;");
  EXPECT_EQ(b->eval_program("c.ref.n;"), Value(99.0));
}

TEST(Snapshot, CyclicObjectGraph) {
  auto b = round_trip(
      "var a = {name: 'a'}; var c = {name: 'c'}; a.next = c; c.prev = a; "
      "a.self = a;");
  EXPECT_EQ(b->eval_program("a.next.prev.name;"), Value(std::string("a")));
  EXPECT_EQ(b->eval_program("a.self.self.name;"), Value(std::string("a")));
}

TEST(Snapshot, ArrayWithHoles) {
  auto b = round_trip("var a = [1, undefined, 'three'];");
  EXPECT_EQ(b->eval_program("a.length;"), Value(3.0));
  EXPECT_TRUE(is_undefined(b->eval_program("a[1];")));
}

TEST(Snapshot, GlobalFunctionSurvivesAndRuns) {
  auto b = round_trip("function add(a, b) { return a + b; }");
  EXPECT_EQ(b->eval_program("add(20, 22);"), Value(42.0));
}

TEST(Snapshot, ClosureStatePreserved) {
  auto b = round_trip(
      "function makeCounter() { var n = 0; "
      "return function() { n = n + 1; return n; }; } "
      "var counter = makeCounter(); counter(); counter();");
  // Counter was at 2 when snapshotted; must continue at 3.
  EXPECT_EQ(b->eval_program("counter();"), Value(3.0));
}

TEST(Snapshot, TwoClosuresShareOneEnvironment) {
  auto b = round_trip(
      "function make() { var n = 10; return { "
      "inc: function() { n = n + 1; }, get: function() { return n; } }; } "
      "var pair = make(); pair.inc();");
  EXPECT_EQ(b->eval_program("pair.get();"), Value(11.0));
  b->eval_program("pair.inc();");
  EXPECT_EQ(b->eval_program("pair.get();"), Value(12.0));
}

TEST(Snapshot, NestedClosureChain) {
  auto b = round_trip(
      "function outer(a) { return function(bv) { "
      "return function(c) { return a + bv + c; }; }; } "
      "var f = outer(100)(20);");
  EXPECT_EQ(b->eval_program("f(3);"), Value(123.0));
}

TEST(Snapshot, SeparateClosureEnvironmentsStaySeparate) {
  auto b = round_trip(
      "function makeCounter() { var n = 0; "
      "return function() { n = n + 1; return n; }; } "
      "var c1 = makeCounter(); var c2 = makeCounter(); c1(); c1(); c2();");
  EXPECT_EQ(b->eval_program("c1();"), Value(3.0));
  EXPECT_EQ(b->eval_program("c2();"), Value(2.0));
}

TEST(Snapshot, NativeFunctionReference) {
  auto b = round_trip("var myLog = console.log; var flr = Math.floor;");
  EXPECT_EQ(b->eval_program("flr(9.7);"), Value(9.0));
  b->eval_program("myLog('restored native works');");
  ASSERT_EQ(b->console_output().size(), 1u);
}

TEST(Snapshot, TypedArrayExactBits) {
  auto b = round_trip(
      "var t = Float32Array(3); t[0] = 0.1; t[1] = -1234.5678; t[2] = 3e-8;");
  auto t = std::get<TypedArrayPtr>(*b->globals()->find("t"));
  EXPECT_EQ(t->data[0], 0.1f);
  EXPECT_EQ(t->data[1], -1234.5678f);
  EXPECT_EQ(t->data[2], 3e-8f);
}

TEST(Snapshot, TypedArrayBase64Mode) {
  SnapshotOptions opts;
  opts.base64_typed_arrays = true;
  SnapshotResult text_snap;
  SnapshotResult b64_snap;
  const std::string src =
      "var t = Float32Array(256); "
      "for (var i = 0; i < 256; i++) { t[i] = i * 0.3125; }";
  auto b_text = round_trip(src, {}, &text_snap);
  auto b_b64 = round_trip(src, opts, &b64_snap);
  auto ta = std::get<TypedArrayPtr>(*b_text->globals()->find("t"));
  auto tb = std::get<TypedArrayPtr>(*b_b64->globals()->find("t"));
  ASSERT_EQ(ta->data.size(), tb->data.size());
  for (std::size_t i = 0; i < ta->data.size(); ++i) {
    EXPECT_EQ(ta->data[i], tb->data[i]);
  }
  // Base64 is more compact than decimal text for dense float data.
  EXPECT_LT(b64_snap.stats.typed_array_bytes,
            text_snap.stats.typed_array_bytes);
}

TEST(Snapshot, DomTreeAndText) {
  auto b = round_trip(
      "var div = document.createElement('div'); div.id = 'root'; "
      "div.setAttribute('class', 'main'); "
      "var span = document.createElement('span'); "
      "span.textContent = 'result: cat'; "
      "div.appendChild(span); document.body.appendChild(div);");
  DomNodePtr div = b->document().get_element_by_id("root");
  ASSERT_NE(div, nullptr);
  ASSERT_EQ(div->children.size(), 1u);
  EXPECT_EQ(div->children[0]->text, "result: cat");
  const std::string* cls = div->get_attribute("class");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(*cls, "main");
}

TEST(Snapshot, DetachedDomNodeReachableFromHeap) {
  auto b = round_trip(
      "var orphan = document.createElement('p'); orphan.textContent = 'o';");
  Value* v = b->globals()->find("orphan");
  ASSERT_NE(v, nullptr);
  auto node = std::get<DomNodePtr>(*v);
  EXPECT_EQ(node->text, "o");
  EXPECT_TRUE(node->parent.expired());
}

TEST(Snapshot, DomListenerWorksAfterRestore) {
  auto b = round_trip(
      "var clicks = 0; "
      "var btn = document.createElement('button'); btn.id = 'btn'; "
      "document.body.appendChild(btn); "
      "btn.addEventListener('click', function() { clicks = clicks + 1; });");
  b->eval_program("document.getElementById('btn').dispatchEvent('click');");
  b->run_events();
  EXPECT_EQ(global_number(*b, "clicks"), 1);
}

TEST(Snapshot, PendingEventRedispatchedOnRestore) {
  // The paper's core flow: event enqueued but not yet handled; after
  // migration the server re-raises it and execution continues there.
  Interpreter a;
  a.eval_program(
      "var state = 'before'; "
      "var btn = document.createElement('button'); btn.id = 'b'; "
      "document.body.appendChild(btn); "
      "btn.addEventListener('infer', function(e) { "
      "  state = 'done:' + e.detail; }); "
      "btn.dispatchEvent('infer', 7);");
  // Do NOT run events — the event is pending, like an offload point.
  SnapshotResult snap = capture_snapshot(a);
  EXPECT_EQ(snap.stats.events, 1u);

  Interpreter b;
  restore_snapshot(b, snap.program);
  EXPECT_EQ(global_string(b, "state"), "before");
  b.run_events();
  EXPECT_EQ(global_string(b, "state"), "done:7");
}

TEST(Snapshot, MultiplePendingEventsKeepOrder) {
  Interpreter a;
  a.eval_program(
      "var log = []; var b = document.createElement('b'); "
      "document.body.appendChild(b); "
      "b.addEventListener('e', function(ev) { log.push(ev.detail); }); "
      "b.dispatchEvent('e', 1); b.dispatchEvent('e', 2); "
      "b.dispatchEvent('e', 3);");
  SnapshotResult snap = capture_snapshot(a);
  Interpreter b;
  restore_snapshot(b, snap.program);
  b.run_events();
  EXPECT_EQ(to_display_string(b.eval_program("log.join(',');")), "1,2,3");
}

TEST(Snapshot, CanvasImageDataSurvives) {
  auto b = round_trip(
      "var canvas = document.createElement('canvas'); canvas.id = 'cv'; "
      "document.body.appendChild(canvas); "
      "canvas.setImageData(Float32Array([0.5, 0.25, 0.125]));");
  EXPECT_EQ(b->eval_program(
                "document.getElementById('cv').getImageData()[2];"),
            Value(0.125));
}

TEST(Snapshot, Deterministic) {
  const std::string src =
      "var a = {x: [1, 2, {y: 'z'}]}; function f() { return a; } "
      "var t = Float32Array([1, 2, 3]);";
  Interpreter i1;
  i1.eval_program(src);
  Interpreter i2;
  i2.eval_program(src);
  EXPECT_EQ(capture_snapshot(i1).program, capture_snapshot(i2).program);
}

TEST(Snapshot, SecondGenerationSnapshot) {
  // Snapshot a restored realm (server → client direction). State must
  // survive two hops, and the second snapshot must not balloon.
  SnapshotResult first;
  auto b = round_trip(
      "function makeCounter() { var n = 0; "
      "return function() { n = n + 1; return n; }; } "
      "var counter = makeCounter(); counter();",
      {}, &first);
  b->eval_program("counter();");  // now 2
  SnapshotResult second = capture_snapshot(*b);
  Interpreter c;
  restore_snapshot(c, second.program);
  EXPECT_EQ(c.eval_program("counter();"), Value(3.0));
  // No environment/temporary leakage between generations.
  EXPECT_LT(second.stats.total_bytes, first.stats.total_bytes * 3);
}

TEST(Snapshot, RebindingAmbientGlobalIsSerialized) {
  auto b = round_trip("console = {log: 'shadowed'};");
  EXPECT_EQ(b->eval_program("console.log;"), Value(std::string("shadowed")));
}

TEST(Snapshot, StatsAccounting) {
  SnapshotResult snap;
  round_trip(
      "var o = {a: 1}; var arr = [1, 2]; var t = Float32Array(8); "
      "function f() { return 0; } "
      "var d = document.createElement('div'); document.body.appendChild(d);",
      {}, &snap);
  EXPECT_EQ(snap.stats.objects, 1u);
  EXPECT_EQ(snap.stats.arrays, 1u);
  EXPECT_EQ(snap.stats.typed_arrays, 1u);
  EXPECT_EQ(snap.stats.functions, 1u);
  EXPECT_EQ(snap.stats.dom_nodes, 2u);  // body + div
  EXPECT_EQ(snap.stats.globals, 5u);
  EXPECT_GT(snap.stats.typed_array_bytes, 0u);
  EXPECT_LT(snap.stats.typed_array_bytes, snap.stats.total_bytes);
}

TEST(Snapshot, FeatureDataDominatesLargeSnapshots) {
  // A large typed array (feature data) should dominate snapshot size, the
  // premise of Table 1's "snapshot except feature data" metric.
  Interpreter a;
  a.eval_program(
      "var feature = Float32Array(10000); "
      "for (var i = 0; i < 10000; i++) { feature[i] = i * 0.123 - 600.0; }");
  SnapshotResult snap = capture_snapshot(a);
  EXPECT_GT(snap.stats.typed_array_bytes,
            snap.stats.total_bytes * 9 / 10);
  EXPECT_LT(snap.stats.non_feature_bytes(), 2000u);
}

}  // namespace
}  // namespace offload::jsvm
