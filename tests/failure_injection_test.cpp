// Failure-injection tests: lossy links, jitter, bare servers, and protocol
// robustness under adverse conditions the edge environment implies.
#include <gtest/gtest.h>

#include "src/core/offload.h"

namespace offload::core {
namespace {

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

TEST(FailureInjection, OffloadSurvivesLossyLink) {
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.channel.a_to_b.loss_rate = 0.2;
  config.channel.b_to_a.loss_rate = 0.2;
  config.channel.reliable = true;
  config.channel.retransmit_timeout = sim::SimTime::millis(100);
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();
  EXPECT_TRUE(result.offloaded);
  RunResult clean = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  // Same answer, possibly slower (retransmissions).
  EXPECT_EQ(result.result_text, clean.result_text);
  EXPECT_GE(result.inference_seconds, clean.inference_seconds);
}

TEST(FailureInjection, HeavyLossStillCompletesWithRetransmits) {
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.channel.a_to_b.loss_rate = 0.5;
  config.channel.reliable = true;
  config.channel.retransmit_timeout = sim::SimTime::millis(50);
  config.channel.max_retransmits = 64;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6) +
                    sim::SimTime::seconds(30);  // margin for lost uploads
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();
  EXPECT_TRUE(result.offloaded);
  EXPECT_FALSE(result.result_text.empty());
}

TEST(FailureInjection, JitterDoesNotBreakOrdering) {
  // Per-message jitter delays arrivals but the protocol must still work
  // (our links are FIFO per direction; jitter only shifts latency).
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.channel.a_to_b.jitter = sim::SimTime::millis(40);
  config.channel.b_to_a.jitter = sim::SimTime::millis(40);
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();
  EXPECT_TRUE(result.offloaded);
  RunResult clean = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  EXPECT_EQ(result.result_text, clean.result_text);
}

TEST(FailureInjection, AsymmetricBandwidth) {
  // Uplink-constrained Wi-Fi: the snapshot upload dominates; the return
  // path is fast.
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.channel.a_to_b.bandwidth_bps = 5e6;
  config.channel.b_to_a.bandwidth_bps = 100e6;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 5e6);
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();
  EXPECT_TRUE(result.offloaded);
  EXPECT_GT(result.breakdown.transmission_up,
            result.breakdown.transmission_down * 3);
}

TEST(FailureInjection, DiffAfterServerRestartRecovers) {
  // Differential offloading when the server "restarts" (drops sessions)
  // between inferences: version miss → need_full → full resend works.
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.client.differential_snapshots = true;
  config.server.keep_sessions = false;  // models a stateless/restarted server
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult first = runtime.run();
  runtime.client().click_at(runtime.simulation().now() +
                            sim::SimTime::seconds(2));
  runtime.simulation().run();
  EXPECT_TRUE(runtime.client().finished());
  EXPECT_EQ(runtime.client().result_text(), first.result_text);
  EXPECT_GE(runtime.server().stats().diff_version_misses, 1);
}

TEST(FailureInjection, ModelMissingOnServerRepliesGracefully) {
  // A snapshot arriving without any model pre-send and without bundled
  // model files must not hang OR kill the server: __loadModel throws
  // inside the restore run, and the server answers with a typed
  // "model_missing:" control reply so the client can re-presend (this is
  // also how clients detect a crashed-and-restarted server).
  sim::Simulation sim;
  auto channel = net::Channel::make(sim, net::ChannelConfig{});
  edge::EdgeServer server(sim, channel->b());
  std::vector<std::string> replies;
  channel->a().set_handler(
      [&](const net::Message& m) { replies.push_back(m.name); });
  // Craft a minimal snapshot that calls __loadModel for an unknown app.
  edge::SnapshotPayload payload;
  payload.program = "(function() { m = __loadModel(\"ghost\"); })();\n";
  net::Message msg;
  msg.type = net::MessageType::kSnapshot;
  msg.name = "ghost";
  msg.payload = payload.encode();
  channel->a().send(std::move(msg));
  sim.run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0], "model_missing:ghost");
  EXPECT_EQ(server.stats().model_missing_replies, 1);
  EXPECT_EQ(server.stats().snapshots_executed, 0);
}

TEST(FailureInjection, PrimaryCrashFailsOverToSpareServer) {
  // Mid-session handoff under failure: the primary crashes right after
  // the click, the supervisor's deadlines fire, the circuit breaker
  // opens, and the inference migrates along the fleet candidate list to
  // the spare server (model re-presend + snapshot replay — snapshots are
  // self-contained, so nothing else moves). The answer must match the
  // no-fault run.
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.client.supervisor.enabled = true;
  // No hedging: this test is about the failover path, and a local hedge
  // would win the race long before the breaker gives up on the primary.
  config.client.supervisor.hedge_after = sim::SimTime::zero();
  config.fleet.spares = 1;
  config.click_at = after_ack_click_time(*bundle.network, false, 0, 30e6);
  fault::CrashSpec crash;
  crash.first_at = config.click_at + sim::SimTime::millis(1);
  crash.downtime = sim::SimTime::seconds(600);  // stays dead
  fault::FaultPlanConfig faults;
  faults.crashes.push_back(crash);
  config.faults = faults;
  OffloadingRuntime runtime(config, std::move(bundle));
  RunResult result = runtime.run();

  EXPECT_TRUE(result.offloaded);
  EXPECT_EQ(result.timeline.server_index, 1);
  EXPECT_GE(runtime.client().supervisor_stats().failovers, 1);
  ASSERT_EQ(runtime.fleet().servers_up(), 2u);
  EXPECT_GE(runtime.fleet().server(1).stats().snapshots_executed, 1);
  EXPECT_EQ(runtime.server().stats().snapshots_executed, 0);

  RunResult clean = run_scenario(tiny_model(), Scenario::kOffloadAfterAck);
  EXPECT_EQ(result.result_text, clean.result_text);
}

TEST(FailureInjection, UnreliableChannelCanStallApp) {
  // With reliability off and certain loss, the offload stalls and the
  // runtime reports it rather than spinning.
  edge::AppBundle bundle = make_benchmark_app(tiny_model(), false);
  RuntimeConfig config;
  config.channel.a_to_b.loss_rate = 0.999;
  config.channel.reliable = false;
  config.click_at = sim::SimTime::seconds(0.05);
  OffloadingRuntime runtime(config, std::move(bundle));
  EXPECT_THROW(runtime.run(), std::runtime_error);
}

}  // namespace
}  // namespace offload::core
