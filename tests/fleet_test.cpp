// End-to-end tests for the edge-server fleet: content-addressed model
// pre-send (digest offers, blob-cache hits, crash wipe, CRC-detected blob
// rot) and balancer-driven request spreading across servers. Clients talk
// to a hand-built EdgeFleet so several of them can share one simulation —
// exactly how the OffloadingRuntime wires its single client, minus the
// single-client assumption.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/offload.h"
#include "src/util/hash.h"

namespace offload::fleet {
namespace {

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

/// A fleet plus any number of clients in one simulation.
struct Harness {
  sim::Simulation sim;
  obs::Obs obs;
  std::unique_ptr<EdgeFleet> fleet;
  std::vector<std::unique_ptr<edge::ClientDevice>> clients;

  Harness(std::size_t size, const std::string& policy, bool dedup) {
    FleetConfig config;
    config.size = size;
    config.balancer.policy = policy;
    config.dedup = dedup;
    config.channel = core::RuntimeConfig::default_channel();
    config.obs = &obs;
    fleet = std::make_unique<EdgeFleet>(sim, config);
  }

  edge::ClientDevice& add_client(const std::string& name) {
    EdgeFleet::ClientLink link = fleet->connect_client(name);
    edge::ClientConfig config;
    config.obs = &obs;
    fleet->configure_client(config, link, name);
    edge::AppBundle bundle = core::make_benchmark_app(tiny_model(), false);
    clients.push_back(std::make_unique<edge::ClientDevice>(
        sim, *link.endpoints[0], config, std::move(bundle)));
    for (std::size_t k = 1; k < link.endpoints.size(); ++k) {
      clients.back()->attach_server(*link.endpoints[k]);
    }
    return *clients.back();
  }

  /// Launch a client now and click comfortably after its model ACK.
  void run_one_inference(edge::ClientDevice& client) {
    client.start();
    client.click_at(sim.now() + sim::SimTime::seconds(5));
    sim.run();
    ASSERT_TRUE(client.finished()) << "inference never completed";
  }
};

/// Digest of every model file the benchmark app pre-sends.
std::vector<std::uint64_t> model_digests() {
  edge::AppBundle bundle = core::make_benchmark_app(tiny_model(), false);
  std::vector<std::uint64_t> digests;
  for (const nn::ModelFile& f : nn::model_files(*bundle.network)) {
    digests.push_back(util::fnv1a(std::span(f.content)));
  }
  return digests;
}

TEST(FleetDedup, SecondClientPresendIsDigestSized) {
  Harness h(1, "hash", true);
  edge::ClientDevice& first = h.add_client("client1");
  h.run_one_inference(first);
  edge::ClientDevice& second = h.add_client("client2");
  h.run_one_inference(second);

  const edge::EdgeServer::Stats& stats = h.fleet->server(0).stats();
  const std::size_t n_files = model_digests().size();
  ASSERT_GE(n_files, 2u);
  EXPECT_EQ(stats.model_offers, 2);
  // Client 1 found a cold cache (all misses, full upload); client 2's
  // offer hit on every file another client uploaded.
  EXPECT_EQ(stats.dedup_miss_files, static_cast<int>(n_files));
  EXPECT_EQ(stats.dedup_hit_files, static_cast<int>(n_files));
  EXPECT_EQ(stats.dedup_corrupt_blobs, 0);
  EXPECT_GT(stats.dedup_bytes_saved, 0u);
  EXPECT_EQ(h.fleet->dedup_bytes_saved(), stats.dedup_bytes_saved);

  // The wire agrees with the counters: the second pre-send shipped only
  // digests, a small fraction of the first client's upload.
  const std::uint64_t full = first.timeline().model_upload_bytes;
  const std::uint64_t offer = second.timeline().model_upload_bytes;
  EXPECT_GT(offer, 0u);
  EXPECT_LT(offer, 512u) << "offer should be digest-sized";
  EXPECT_GT(full, 8 * offer);
  // Saved bytes are the offered content sizes: almost the whole upload
  // (the remainder is payload framing — names, varints).
  EXPECT_LT(stats.dedup_bytes_saved, full);
  EXPECT_GT(stats.dedup_bytes_saved, full / 2);
  // Both inferences still offloaded and produced results.
  EXPECT_TRUE(first.timeline().offloaded);
  EXPECT_TRUE(second.timeline().offloaded);
  EXPECT_EQ(first.result_text(), second.result_text());
}

TEST(FleetDedup, CrashWipesTheBlobCache) {
  Harness h(1, "hash", true);
  edge::ClientDevice& first = h.add_client("client1");
  h.run_one_inference(first);
  EXPECT_GT(h.fleet->server(0).blob_store().blob_count(), 0u);

  h.fleet->server(0).schedule_crash(h.sim.now() + sim::SimTime::millis(1),
                                    sim::SimTime::millis(500));
  h.sim.run();
  EXPECT_EQ(h.fleet->server(0).blob_store().blob_count(), 0u);

  // The next client offers into an empty cache: zero hits, full upload.
  edge::ClientDevice& second = h.add_client("client2");
  h.run_one_inference(second);
  const edge::EdgeServer::Stats& stats = h.fleet->server(0).stats();
  EXPECT_EQ(stats.dedup_hit_files, 0);
  EXPECT_EQ(second.timeline().model_upload_bytes,
            first.timeline().model_upload_bytes);
  EXPECT_TRUE(second.timeline().offloaded);
}

TEST(FleetDedup, CorruptedBlobIsEvictedAndReuploaded) {
  Harness h(1, "hash", true);
  edge::ClientDevice& first = h.add_client("client1");
  h.run_one_inference(first);

  const std::vector<std::uint64_t> digests = model_digests();
  edge::BlobStore& blobs = h.fleet->server(0).blob_store();
  ASSERT_TRUE(blobs.corrupt_blob(digests.front()));

  edge::ClientDevice& second = h.add_client("client2");
  h.run_one_inference(second);
  const edge::EdgeServer::Stats& stats = h.fleet->server(0).stats();
  // The rotted blob failed its CRC on lookup: counted, treated as a miss
  // (re-uploaded in full), while every healthy file still hit.
  EXPECT_EQ(stats.dedup_corrupt_blobs, 1);
  EXPECT_EQ(stats.dedup_hit_files, static_cast<int>(digests.size()) - 1);
  EXPECT_EQ(stats.dedup_miss_files, static_cast<int>(digests.size()) + 1);
  // The re-upload repopulated the cache with a clean copy.
  EXPECT_TRUE(blobs.contains(digests.front()));
  bool corrupt = false;
  EXPECT_NE(blobs.find(digests.front(), &corrupt), nullptr);
  EXPECT_FALSE(corrupt);
  EXPECT_TRUE(second.timeline().offloaded);
  EXPECT_EQ(second.result_text(), first.result_text());
}

TEST(FleetDedup, CrashDuringPresendFailsOverWithDigestSizedReoffer) {
  // Crash the primary mid-model-pre-send, after the supervisor has a
  // snapshot riding on the pending ACK. The retry policy burns through the
  // dead server, the breaker opens, and the failover re-presends to the
  // replacement — as a digest offer. The replacement's blob cache already
  // holds all but one file, so it re-requests exactly the missing blob.
  std::string expected;
  {
    Harness clean(1, "hash", false);
    edge::ClientDevice& reference = clean.add_client("client");
    clean.run_one_inference(reference);
    expected = reference.result_text();
  }

  sim::Simulation sim;
  obs::Obs obs;
  FleetConfig fleet_config;
  fleet_config.size = 2;
  fleet_config.dedup = true;
  fleet_config.server.ack_snapshots = true;
  fleet_config.channel = core::RuntimeConfig::default_channel();
  fleet_config.obs = &obs;
  EdgeFleet fleet(sim, fleet_config);

  // Servers materialize on the first connect, so link before warming.
  EdgeFleet::ClientLink link = fleet.connect_client("client");

  // Warm the replacement the way an earlier tenant would have: every model
  // blob except the first is already cached on server 1.
  edge::AppBundle warm = core::make_benchmark_app(tiny_model(), false);
  const std::vector<nn::ModelFile> files = nn::model_files(*warm.network);
  ASSERT_GE(files.size(), 2u);
  for (std::size_t i = 1; i < files.size(); ++i) {
    fleet.server(1).blob_store().put(util::fnv1a(std::span(files[i].content)),
                                     files[i].content);
  }

  edge::ClientConfig client_config;
  client_config.obs = &obs;
  client_config.supervisor.enabled = true;
  // No hedge: a local run winning the race would mask the failover path
  // this test is about.
  client_config.supervisor.hedge_after = sim::SimTime::zero();
  // What configure_client would set; skipping the balancer hook pins the
  // candidate order to [0, 1] so the crash victim is always the primary.
  client_config.dedup_presend = true;
  edge::AppBundle bundle = core::make_benchmark_app(tiny_model(), false);
  edge::ClientDevice client(sim, *link.endpoints[0], client_config,
                            std::move(bundle));
  client.attach_server(*link.endpoints[1]);

  client.start();
  // 2 ms in, the offer/send_files round trip is still in flight — the
  // primary dies holding a partial upload and stays down past the whole
  // retry budget. The click lands before any ACK could, so the snapshot
  // rides the pre-send and funnels timeouts into the failover policy.
  fleet.server(0).schedule_crash(sim.now() + sim::SimTime::millis(2),
                                 sim::SimTime::seconds(600));
  client.click_at(sim.now() + sim::SimTime::millis(60));
  sim.run();

  ASSERT_TRUE(client.finished());
  EXPECT_TRUE(client.timeline().offloaded);
  EXPECT_EQ(client.timeline().server_index, 1);
  EXPECT_GE(client.supervisor_stats().failovers, 1);
  EXPECT_EQ(client.result_text(), expected);

  // The replacement saw one digest offer, hit on every pre-warmed blob,
  // and asked for (then received) only the one it was missing.
  const edge::EdgeServer::Stats& replacement = fleet.server(1).stats();
  EXPECT_EQ(replacement.model_offers, 1);
  EXPECT_EQ(replacement.dedup_hit_files, static_cast<int>(files.size()) - 1);
  EXPECT_EQ(replacement.dedup_miss_files, 1);
  EXPECT_EQ(replacement.snapshots_executed, 1);
  EXPECT_GT(replacement.dedup_bytes_saved, 0u);
  // The dead primary never executed anything and never ACKed the model.
  EXPECT_EQ(fleet.server(0).stats().snapshots_executed, 0);
  EXPECT_EQ(fleet.server(0).stats().models_stored, 0);
}

TEST(FleetBalance, LeastOutstandingSpreadsConcurrentClients) {
  Harness h(2, "least_outstanding", false);
  edge::ClientDevice& first = h.add_client("client1");
  edge::ClientDevice& second = h.add_client("client2");
  first.start();
  second.start();
  const sim::SimTime click = h.sim.now() + sim::SimTime::seconds(5);
  first.click_at(click);
  second.click_at(click);
  h.sim.run();
  ASSERT_TRUE(first.finished());
  ASSERT_TRUE(second.finished());
  // The first routed click charged server 0; the second click saw that
  // charge and went to server 1: one execution each.
  EXPECT_EQ(h.fleet->server(0).stats().snapshots_executed, 1);
  EXPECT_EQ(h.fleet->server(1).stats().snapshots_executed, 1);
  // Completions released both charges.
  for (int pending : h.fleet->outstanding()) EXPECT_EQ(pending, 0);
}

TEST(FleetBalance, BlobCachesArePerServer) {
  // Dedup is a per-server cache: a model uploaded to server 0 does not
  // make server 1 warm.
  Harness h(2, "least_outstanding", true);
  edge::ClientDevice& first = h.add_client("client1");
  h.run_one_inference(first);
  const bool s0_warm = h.fleet->server(0).blob_store().blob_count() > 0;
  const bool s1_warm = h.fleet->server(1).blob_store().blob_count() > 0;
  EXPECT_NE(s0_warm, s1_warm) << "exactly one server should hold the model";
}

TEST(FleetNaming, DegenerateFleetKeepsLegacyServerName) {
  sim::Simulation sim;
  FleetConfig one;
  one.size = 1;
  FleetConfig many;
  many.size = 3;
  EXPECT_EQ(EdgeFleet(sim, one).server_name(0), "server");
  EdgeFleet fleet(sim, many);
  EXPECT_EQ(fleet.server_name(0), "fleet/server0");
  EXPECT_EQ(fleet.server_name(2), "fleet/server2");
  EXPECT_THROW(EdgeFleet(sim, FleetConfig{.size = 0}), std::invalid_argument);
}

TEST(FleetRuntime, SpareServerAttachesAfterBalancedSet) {
  // A spare lands after the fleet servers in the client's candidate list
  // (the historical "server-b" secondary wiring, now fleet-owned) and is
  // never routed while the balanced set is healthy.
  edge::AppBundle bundle = core::make_benchmark_app(tiny_model(), false);
  core::RuntimeConfig config;
  config.client.supervisor.enabled = true;
  config.fleet.spares = 1;
  config.click_at =
      core::after_ack_click_time(*bundle.network, false, 0, 30e6);
  core::OffloadingRuntime runtime(config, std::move(bundle));
  EXPECT_EQ(runtime.client().server_count(), 2u);
  EXPECT_EQ(runtime.fleet().size(), 1u);
  EXPECT_EQ(runtime.fleet().servers_up(), 2u);
  EXPECT_EQ(runtime.fleet().server_name(1), "server-b");
  core::RunResult result = runtime.run();
  EXPECT_TRUE(result.offloaded);
  EXPECT_EQ(result.timeline.server_index, 0);
  EXPECT_EQ(runtime.fleet().server(1).stats().snapshots_executed, 0);
}

TEST(FleetRuntime, RoutedFleetRunsThroughTheRuntime) {
  edge::AppBundle bundle = core::make_benchmark_app(tiny_model(), false);
  core::RuntimeConfig config;
  config.fleet.size = 2;
  config.fleet.balancer.policy = "p2c";
  config.fleet.dedup = true;
  config.click_at =
      core::after_ack_click_time(*bundle.network, false, 0, 30e6);
  obs::Obs obs;
  config.obs = &obs;
  core::OffloadingRuntime runtime(config, std::move(bundle));
  EXPECT_EQ(runtime.client().server_count(), 2u);
  core::RunResult result = runtime.run();
  EXPECT_TRUE(result.offloaded);
  // Exactly one fleet server executed the snapshot, and the routing
  // marker for it landed in the trace.
  const int executed = runtime.fleet().server(0).stats().snapshots_executed +
                       runtime.fleet().server(1).stats().snapshots_executed;
  EXPECT_EQ(executed, 1);
  bool saw_route = false;
  for (const obs::Span& s : obs.trace.spans()) {
    if (s.resource == "fleet/balancer" &&
        s.name.rfind("route:server", 0) == 0) {
      saw_route = true;
    }
  }
  EXPECT_TRUE(saw_route);
}

}  // namespace
}  // namespace offload::fleet
