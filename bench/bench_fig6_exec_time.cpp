// Fig. 6: execution time of inference for the three web apps under the
// five configurations — Client only, Server only, snapshot offloading
// before the model ACK, after the ACK, and partial inference (at the
// first pooling layer, per Section IV.B).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/offload.h"

int main() {
  using namespace offload;
  bench::print_banner(
      "Fig. 6 — Execution time of inference in three web apps (seconds)",
      "Server << Client; after-ACK ~= Server + sub-second snapshot "
      "overhead; before-ACK adds the model transfer (slower than local "
      "for AgeNet/GenderNet); partial slower than full offload but "
      "cheaper than Client");

  util::TextTable table;
  table.header({"App", "Client", "Server", "Offload (before ACK)",
                "Offload (after ACK)", "Offload (partial @1st_pool)"});

  for (const auto& model : nn::benchmark_models()) {
    std::fprintf(stderr, "[fig6] running %s...\n", model.app_name);
    core::ScenarioOptions opts;
    double client_s =
        core::run_scenario(model, core::Scenario::kClientOnly, opts)
            .inference_seconds;
    double server_s =
        core::run_scenario(model, core::Scenario::kServerOnly, opts)
            .inference_seconds;
    double before_s =
        core::run_scenario(model, core::Scenario::kOffloadBeforeAck, opts)
            .inference_seconds;
    double after_s =
        core::run_scenario(model, core::Scenario::kOffloadAfterAck, opts)
            .inference_seconds;
    double partial_s =
        core::run_scenario(model, core::Scenario::kOffloadPartial, opts)
            .inference_seconds;
    table.row({model.app_name, bench::fmt_s(client_s), bench::fmt_s(server_s),
               bench::fmt_s(before_s), bench::fmt_s(after_s),
               bench::fmt_s(partial_s)});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNotes: 30 Mbps link, 1 ms latency (the paper's netem setup). "
      "Offloaded runs produce bit-identical classification results to "
      "local runs (asserted by tests/integration_test.cpp).\n");
  return 0;
}
