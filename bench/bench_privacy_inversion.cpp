// Privacy experiment (supporting Section III.B.2): how well can a curious
// edge server reconstruct the user's input from the transferred feature
// data? Runs the hill-climbing inversion attack with (a) full knowledge of
// the front network — the situation the paper prevents by not pre-sending
// the front weights — and (b) a surrogate front with re-initialized
// weights, which is all the server can build from the description.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/pool.h"
#include "src/privacy/inversion.h"
#include "src/privacy/metrics.h"

namespace {

using namespace offload;

std::unique_ptr<nn::Network> make_front(std::uint64_t seed) {
  auto net = std::make_unique<nn::Network>("front");
  net->add(std::make_unique<nn::InputLayer>("data", nn::Shape{3, 16, 16}));
  net->add(std::make_unique<nn::ConvLayer>(
      "conv1", nn::ConvConfig{.in_channels = 3, .out_channels = 8,
                              .kernel = 3, .stride = 1, .pad = 1}));
  net->add(std::make_unique<nn::PoolLayer>(
      "pool1", nn::PoolConfig{.kernel = 2, .stride = 2, .pad = 0}, false));
  net->init_params(seed);
  return net;
}

nn::Tensor secret_image() {
  nn::Tensor img(nn::Shape{3, 16, 16});
  for (std::int64_t c = 0; c < 3; ++c) {
    for (std::int64_t h = 0; h < 16; ++h) {
      for (std::int64_t w = 0; w < 16; ++w) {
        float v = static_cast<float>(h + w) / 32.0f;
        if (h >= 4 && h < 10 && w >= 4 && w < 10) v = 0.95f;
        img.at(c, h, w) = v;
      }
    }
  }
  return img;
}

}  // namespace

int main() {
  bench::print_banner(
      "Privacy — feature inversion with vs without the front weights",
      "with the real front weights the attack reconstructs the input "
      "(high correlation / PSNR); with the weights withheld it fails");

  auto front = make_front(31);
  nn::Tensor original = secret_image();

  util::TextTable table;
  table.header({"offload point", "attacker knows weights", "feature loss",
                "correlation", "PSNR (dB)"});

  for (const char* point : {"conv1", "pool1"}) {
    std::size_t cut = front->index_of(point);
    nn::Tensor feature = front->forward_front(original, cut);
    for (bool knows : {true, false}) {
      std::fprintf(stderr, "[privacy] %s, weights=%d...\n", point, knows);
      auto attacker_net = knows ? make_front(31) : make_front(777);
      privacy::InversionResult r =
          privacy::invert_features(*attacker_net, cut, feature);
      table.row({point, knows ? "yes" : "no (withheld)",
                 util::format_fixed(r.final_feature_loss, 6),
                 util::format_fixed(
                     privacy::correlation(r.reconstruction, original), 3),
                 util::format_fixed(
                     privacy::psnr_db(r.reconstruction, original), 1)});
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNote: the 'no' rows model the paper's defense of pre-sending only "
      "the rear part of the model (Section III.B.2).\n");
  return 0;
}
