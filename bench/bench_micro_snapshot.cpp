// Microbenchmarks (google-benchmark) for the snapshot engine: capture and
// restore throughput versus heap size and typed-array payload, plus the
// text-expansion factor the partitioner's estimate relies on.
#include <benchmark/benchmark.h>

#include "src/jsvm/snapshot.h"

namespace {

using namespace offload;

std::string heap_program(int objects) {
  std::string src =
      "var root = [];\n"
      "for (var i = 0; i < " + std::to_string(objects) + "; i++) {\n"
      "  root.push({id: i, name: 'node' + i, tags: [i, i * 2], child: null});\n"
      "  if (i > 0) { root[i].child = root[i - 1]; }\n"
      "}\n";
  return src;
}

void BM_SnapshotCaptureHeap(benchmark::State& state) {
  jsvm::Interpreter interp;
  interp.eval_program(heap_program(static_cast<int>(state.range(0))));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto snap = jsvm::capture_snapshot(interp);
    bytes = snap.stats.total_bytes;
    benchmark::DoNotOptimize(snap);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(bytes) * static_cast<double>(state.iterations()) /
          1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotCaptureHeap)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotRestoreHeap(benchmark::State& state) {
  jsvm::Interpreter interp;
  interp.eval_program(heap_program(static_cast<int>(state.range(0))));
  auto snap = jsvm::capture_snapshot(interp);
  for (auto _ : state) {
    jsvm::Interpreter fresh;
    jsvm::restore_snapshot(fresh, snap.program);
    benchmark::DoNotOptimize(fresh.globals());
  }
}
BENCHMARK(BM_SnapshotRestoreHeap)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotTypedArray(benchmark::State& state) {
  // Feature-data path: one big Float32Array (decimal-text encoding).
  jsvm::Interpreter interp;
  const auto n = state.range(0);
  interp.eval_program(
      "var feature = Float32Array(" + std::to_string(n) + ");\n"
      "for (var i = 0; i < feature.length; i++) {\n"
      "  feature[i] = i * 0.001 - 17.5;\n"
      "}\n");
  std::uint64_t text_bytes = 0;
  for (auto _ : state) {
    auto snap = jsvm::capture_snapshot(interp);
    text_bytes = snap.stats.typed_array_bytes;
    benchmark::DoNotOptimize(snap);
  }
  state.counters["text_expansion"] =
      static_cast<double>(text_bytes) / (static_cast<double>(n) * 4.0);
}
BENCHMARK(BM_SnapshotTypedArray)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(802'816)  // GoogLeNet conv1 feature (64x112x112)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotTypedArrayBase64(benchmark::State& state) {
  jsvm::Interpreter interp;
  interp.eval_program(
      "var feature = Float32Array(100000);\n"
      "for (var i = 0; i < feature.length; i++) {\n"
      "  feature[i] = i * 0.001 - 17.5;\n"
      "}\n");
  jsvm::SnapshotOptions opts;
  opts.base64_typed_arrays = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(jsvm::capture_snapshot(interp, opts));
  }
}
BENCHMARK(BM_SnapshotTypedArrayBase64)->Unit(benchmark::kMillisecond);

void BM_SnapshotRoundTripWithPendingEvent(benchmark::State& state) {
  jsvm::Interpreter interp;
  interp.eval_program(
      "var n = 0;\n"
      "var btn = document.createElement('button');\n"
      "document.body.appendChild(btn);\n"
      "btn.addEventListener('go', function() { n = n + 1; });\n"
      "btn.dispatchEvent('go');\n");
  auto snap = jsvm::capture_snapshot(interp);
  for (auto _ : state) {
    jsvm::Interpreter fresh;
    jsvm::restore_snapshot(fresh, snap.program);
    fresh.run_events();
    benchmark::DoNotOptimize(fresh.stats());
  }
}
BENCHMARK(BM_SnapshotRoundTripWithPendingEvent)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
