// Edge-server capacity under many clients, two experiments in one binary:
//
// 1. Contention fleet (the original experiment): N clients offload the
//    AgeNet app to one server at the same instant; queueing on the
//    server's compute stretches inference time ~linearly.
//
// 2. Serving sweep: Poisson streams of partial-inference requests hit the
//    serving scheduler directly, sweeping queue policy (FIFO / EDF),
//    dynamic batch size, and offered load relative to single-request
//    capacity. Reports p50/p95/p99 latency, sustained throughput, and the
//    shed rate under admission control — showing that batch fusion lifts
//    sustained throughput above request-at-a-time FIFO and that load
//    shedding keeps the p99 of admitted requests bounded at 2x overload.
//
// Results are also written as BENCH_multiclient.json for cross-PR
// tracking.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/json_writer.h"
#include "src/core/offload.h"
#include "src/obs/obs.h"
#include "src/serve/scheduler.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace {

using namespace offload;

// ------------------------------------------------------------ experiment 1

struct FleetResult {
  double mean_s = 0;
  double worst_s = 0;
  double mean_queue_wait_s = 0;
};

FleetResult run_fleet(int n_clients) {
  sim::Simulation sim;
  nn::BenchmarkModel model{"AgeNet", &nn::build_agenet, 11, 227};

  // One shared metrics registry instead of per-bench accumulators: every
  // client reports into client.inference_ms, the server's scheduler into
  // server.queue_wait_ms, and the bench just reads them back (histogram
  // sum/count/max are exact, so means and maxima lose nothing).
  obs::Obs obs;

  // One channel per client, one server attached to all of them.
  std::vector<std::unique_ptr<net::Channel>> channels;
  std::unique_ptr<edge::EdgeServer> server;
  std::vector<std::unique_ptr<edge::ClientDevice>> clients;

  edge::EdgeServerConfig server_config;
  server_config.keep_sessions = false;  // all clients run the same app id
  server_config.obs = &obs;

  for (int i = 0; i < n_clients; ++i) {
    net::ChannelConfig ch;
    ch.a_to_b.bandwidth_bps = 30e6;
    ch.b_to_a.bandwidth_bps = 30e6;
    channels.push_back(net::Channel::make(sim, ch, "client" + std::to_string(i),
                                          "edge", 100 + i));
    if (i == 0) {
      server = std::make_unique<edge::EdgeServer>(sim, channels[0]->b(),
                                                  server_config);
    } else {
      server->attach(channels[static_cast<std::size_t>(i)]->b());
    }
  }

  edge::AppBundle prototype = core::make_benchmark_app(model, false);
  sim::SimTime click =
      core::after_ack_click_time(*prototype.network, false, 0, 30e6) +
      sim::SimTime::seconds(static_cast<double>(n_clients));
  for (int i = 0; i < n_clients; ++i) {
    edge::ClientConfig config;
    config.obs = &obs;
    clients.push_back(std::make_unique<edge::ClientDevice>(
        sim, channels[static_cast<std::size_t>(i)]->a(), config,
        core::make_benchmark_app(model, false)));
    clients.back()->start();
    // Everyone clicks at the same instant: worst-case contention.
    clients.back()->click_at(click);
  }
  sim.run();

  // Finished clients observed client.inference_ms once each; every
  // executed snapshot observed server.queue_wait_ms at completion.
  FleetResult out;
  if (const obs::Histogram* h = obs.metrics.histogram("client.inference_ms")) {
    out.mean_s = h->mean() / 1e3;
    out.worst_s = h->max / 1e3;
  }
  if (const obs::Histogram* h =
          obs.metrics.histogram("server.queue_wait_ms")) {
    out.mean_queue_wait_s = h->mean() / 1e3;
  }
  return out;
}

// ------------------------------------------------------------ experiment 2

struct ServingResult {
  double capacity_rps = 0;    ///< 1 / single-request rear service time
  double offered_rps = 0;
  double throughput_rps = 0;  ///< completed / makespan
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double shed_rate = 0;       ///< rejected / offered
  int largest_batch = 0;
};

/// Poisson stream of AgeNet partial-inference jobs (cut after the conv
/// stack, rear = the fc layers) against a standalone scheduler.
ServingResult run_serving(const char* policy, std::size_t max_batch,
                          double load_factor) {
  constexpr int kRequests = 300;
  sim::Simulation sim;
  std::shared_ptr<const nn::Network> net = nn::build_agenet();
  const std::size_t cut = net->index_of("pool5");

  // The scheduler publishes its own latency histogram and shed counters;
  // the bench reads those instead of keeping a parallel set of hand
  // accumulators. Pre-define serve.total_ms with fine linear buckets so
  // the interpolated percentiles resolve to a quarter millisecond.
  obs::Obs obs;
  {
    std::vector<double> bounds;
    for (double b = 0.25; b <= 400.0; b += 0.25) bounds.push_back(b);
    obs.metrics.define_histogram("serve.total_ms", std::move(bounds));
  }

  serve::SchedulerConfig cfg;
  cfg.profile = nn::DeviceProfile::edge_server();
  cfg.replicas = 1;
  cfg.max_batch = max_batch;
  cfg.max_batch_wait = sim::SimTime::millis(20);
  cfg.max_queue = 32;
  cfg.policy = policy;
  cfg.obs = &obs;
  serve::Scheduler sched(sim, cfg);
  sched.register_model(net);

  const double service_s =
      cfg.profile.network_batch_time_s(*net, cut + 1, net->size(), 1);
  const double capacity_rps = 1.0 / service_s;
  const double rate = load_factor * capacity_rps;

  util::Pcg32 rng(2024, 77);
  util::Pcg32 feature_rng(5, 9);
  nn::Tensor feature =
      nn::Tensor::random_uniform(net->analyze().shapes[cut], feature_rng);

  sim::SimTime last_completion;
  double t = 0;
  for (int i = 0; i < kRequests; ++i) {
    t += -std::log(1.0 - rng.canonical()) / rate;  // exponential gap
    const sim::SimTime at = sim::SimTime::seconds(t);
    // Client-side latency budgets, for EDF to order by.
    const sim::SimTime deadline =
        at + sim::SimTime::seconds(rng.uniform(0.03, 0.12));
    sim.schedule_at(at, [&, deadline] {
      sched.submit_infer(
          net->name(), cut, feature,
          [&](nn::Tensor, const serve::RequestTiming& timing) {
            last_completion = timing.completed;
          },
          deadline);
    });
  }
  sim.run();

  ServingResult out;
  out.capacity_rps = capacity_rps;
  out.offered_rps = rate;
  const std::uint64_t completed = obs.metrics.counter("serve.completed");
  out.throughput_rps = last_completion > sim::SimTime::zero()
                           ? static_cast<double>(completed) /
                                 last_completion.to_seconds()
                           : 0.0;
  if (const obs::Histogram* h = obs.metrics.histogram("serve.total_ms")) {
    out.p50_ms = h->quantile(0.50);
    out.p95_ms = h->quantile(0.95);
    out.p99_ms = h->quantile(0.99);
  }
  out.shed_rate =
      static_cast<double>(obs.metrics.counter("serve.rejected.queue_full")) /
      kRequests;
  out.largest_batch = sched.stats().largest_batch;
  return out;
}

std::string fmt2(double v) { return util::format_fixed(v, 2); }

}  // namespace

int main() {
  std::vector<offload::bench::JsonObject> json;

  offload::bench::print_banner(
      "Edge-server contention — N clients offloading AgeNet simultaneously",
      "one client sees the Fig. 6 after-ACK time; as clients pile up, "
      "server compute queues FIFO and tail latency grows ~linearly");

  offload::util::TextTable table;
  table.header({"clients", "mean inference (s)", "worst inference (s)",
                "mean server queue wait (s)"});
  for (int n : {1, 2, 4, 8}) {
    FleetResult r = run_fleet(n);
    table.row({std::to_string(n), offload::bench::fmt_s(r.mean_s),
               offload::bench::fmt_s(r.worst_s),
               offload::bench::fmt_s(r.mean_queue_wait_s)});
    json.push_back(offload::bench::JsonObject()
                       .set("experiment", "contention")
                       .set("clients", n)
                       .set("mean_inference_s", r.mean_s)
                       .set("worst_inference_s", r.worst_s)
                       .set("mean_queue_wait_s", r.mean_queue_wait_s));
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNote: requests serialize on the server's compute (FIFO). The "
      "uplinks are independent (each client has its own Wi-Fi path), so "
      "the growth isolates server-side contention.\n\n");

  offload::bench::print_banner(
      "Serving sweep — scheduler policy x batch size x offered load",
      "batch fusion (batch >= 4) sustains strictly higher throughput than "
      "request-at-a-time FIFO; admission control sheds overload so the p99 "
      "of admitted requests stays bounded at 2x capacity");

  struct Variant {
    const char* policy;
    std::size_t max_batch;
  };
  const Variant variants[] = {
      {"fifo", 1}, {"fifo", 4}, {"fifo", 8}, {"edf", 4}};
  const double loads[] = {0.9, 1.2, 1.5, 2.0};

  offload::util::TextTable sweep;
  sweep.header({"policy", "batch", "load x cap", "offered rps", "tput rps",
                "p50 ms", "p95 ms", "p99 ms", "shed %", "max fused"});
  for (const Variant& v : variants) {
    for (double load : loads) {
      ServingResult r = run_serving(v.policy, v.max_batch, load);
      sweep.row({v.policy, std::to_string(v.max_batch), fmt2(load),
                 fmt2(r.offered_rps), fmt2(r.throughput_rps), fmt2(r.p50_ms),
                 fmt2(r.p95_ms), fmt2(r.p99_ms), fmt2(100.0 * r.shed_rate),
                 std::to_string(r.largest_batch)});
      json.push_back(offload::bench::JsonObject()
                         .set("experiment", "serving")
                         .set("policy", v.policy)
                         .set("max_batch", v.max_batch)
                         .set("load_factor", load)
                         .set("capacity_rps", r.capacity_rps)
                         .set("offered_rps", r.offered_rps)
                         .set("throughput_rps", r.throughput_rps)
                         .set("p50_ms", r.p50_ms)
                         .set("p95_ms", r.p95_ms)
                         .set("p99_ms", r.p99_ms)
                         .set("shed_rate", r.shed_rate)
                         .set("largest_batch", r.largest_batch));
    }
  }
  std::printf("%s", sweep.str().c_str());
  std::printf(
      "\nNote: requests are AgeNet partial inferences (cut after the conv "
      "stack). Capacity = 1 / single-request rear time. Batched variants "
      "fuse compatible requests into one rear-range forward, amortizing "
      "per-layer overhead and streaming weights once per launch.\n");

  return offload::bench::write_json_array("BENCH_multiclient.json", json)
             ? 0
             : 1;
}
