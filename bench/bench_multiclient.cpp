// Edge-server contention: the paper's edge server is a *generic* resource
// shared by whoever is nearby. This experiment scales the number of
// clients simultaneously offloading the AgeNet app to one server and
// reports how queueing on the server's compute stretches the inference
// time — the capacity dimension of the deployment the paper envisions.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/offload.h"
#include "src/util/stats.h"

namespace {

using namespace offload;

struct FleetResult {
  double mean_s = 0;
  double worst_s = 0;
  double mean_queue_wait_s = 0;
};

FleetResult run_fleet(int n_clients) {
  sim::Simulation sim;
  nn::BenchmarkModel model{"AgeNet", &nn::build_agenet, 11, 227};

  // One channel per client, one server attached to all of them.
  std::vector<std::unique_ptr<net::Channel>> channels;
  std::unique_ptr<edge::EdgeServer> server;
  std::vector<std::unique_ptr<edge::ClientDevice>> clients;

  edge::EdgeServerConfig server_config;
  server_config.keep_sessions = false;  // all clients run the same app id

  for (int i = 0; i < n_clients; ++i) {
    net::ChannelConfig ch;
    ch.a_to_b.bandwidth_bps = 30e6;
    ch.b_to_a.bandwidth_bps = 30e6;
    channels.push_back(net::Channel::make(sim, ch, "client" + std::to_string(i),
                                          "edge", 100 + i));
    if (i == 0) {
      server = std::make_unique<edge::EdgeServer>(sim, channels[0]->b(),
                                                  server_config);
    } else {
      server->attach(channels[static_cast<std::size_t>(i)]->b());
    }
  }

  edge::AppBundle prototype = core::make_benchmark_app(model, false);
  sim::SimTime click =
      core::after_ack_click_time(*prototype.network, false, 0, 30e6) +
      sim::SimTime::seconds(static_cast<double>(n_clients));
  for (int i = 0; i < n_clients; ++i) {
    edge::ClientConfig config;
    clients.push_back(std::make_unique<edge::ClientDevice>(
        sim, channels[static_cast<std::size_t>(i)]->a(), config,
        core::make_benchmark_app(model, false)));
    clients.back()->start();
    // Everyone clicks at the same instant: worst-case contention.
    clients.back()->click_at(click);
  }
  sim.run();

  FleetResult out;
  util::Accumulator inference;
  for (const auto& client : clients) {
    if (!client->finished()) continue;
    inference.add(client->timeline().inference_seconds());
  }
  util::Accumulator wait;
  for (const auto& record : server->executions()) {
    wait.add(record.queue_wait_s);
  }
  out.mean_s = inference.mean();
  out.worst_s = inference.max();
  out.mean_queue_wait_s = wait.mean();
  return out;
}

}  // namespace

int main() {
  bench::print_banner(
      "Edge-server contention — N clients offloading AgeNet simultaneously",
      "one client sees the Fig. 6 after-ACK time; as clients pile up, "
      "server compute queues FIFO and tail latency grows ~linearly");

  util::TextTable table;
  table.header({"clients", "mean inference (s)", "worst inference (s)",
                "mean server queue wait (s)"});
  for (int n : {1, 2, 4, 8}) {
    std::fprintf(stderr, "[multiclient] n=%d...\n", n);
    FleetResult r = run_fleet(n);
    table.row({std::to_string(n), bench::fmt_s(r.mean_s),
               bench::fmt_s(r.worst_s), bench::fmt_s(r.mean_queue_wait_s)});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNote: requests serialize on the server's compute (FIFO). The "
      "uplinks are independent (each client has its own Wi-Fi path), so "
      "the growth isolates server-side contention.\n");
  return 0;
}
