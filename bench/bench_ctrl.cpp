// Adaptive partition-point control versus the static Neurosurgeon choice
// (the Fig. 8 sweep, made online). Each trial runs the partial-inference
// TinyCNN app on a deliberately weak client (the paper's no-SIMD ARM
// class) through a sequence of clicks while the environment moves under
// it:
//
//   stationary      — healthy 30 Mbps uplink, idle server, start to end.
//   bandwidth-shift — the uplink collapses for the back half of the run
//                     (30 Mbps → 100 kbps), a netem-style schedule applied
//                     to the client's channel between clicks.
//   load-wave       — a sim::workload flash crowd floods the edge
//                     scheduler with background jobs for the middle third
//                     of the run, so offloaded requests queue behind it.
//
// The static policy keeps the offline first-pool cut everywhere. The
// drift policy multiplies the offline cost model by learned per-arm EWMA
// corrections; the bandit treats the labeled cut points as UCB arms.
// Every policy, schedule, and workload draw is seeded: two invocations of
// this binary produce byte-identical BENCH_ctrl.json, and the result is
// independent of OFFLOAD_THREADS — the CI determinism gate diffs the file
// across runs.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/json_writer.h"
#include "src/core/offload.h"
#include "src/ctrl/controller.h"
#include "src/obs/obs.h"
#include "src/sim/workload.h"
#include "src/util/stats.h"

namespace {

using namespace offload;

constexpr int kClicks = 12;
constexpr double kThinkSeconds = 2.0;
constexpr double kHealthyBps = 30e6;
constexpr double kCollapsedBps = 1e5;

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

// The paper's weak ARM client story, scaled onto the tiny test net: with
// the stock embedded profile TinyCNN runs faster locally than any
// offload, which would make every policy trivially choose local. A 20x
// slower client restores the paper's regime — offloading wins ~3-4x on a
// healthy link, and full-local is the right answer only when the link or
// the server degrades.
nn::DeviceProfile weak_client() {
  nn::DeviceProfile profile = nn::DeviceProfile::embedded_client();
  for (double& gflops : profile.gflops) gflops /= 20.0;
  return profile;
}

struct Scenario {
  std::string name;
  /// Applied between clicks: reshape the uplink for the next click.
  double uplink_bps_for_click(int click) const {
    if (name == "bandwidth_shift") {
      return click >= 6 ? kCollapsedBps : kHealthyBps;
    }
    return kHealthyBps;
  }
  bool load_wave() const { return name == "load_wave"; }
};

struct PolicyResult {
  std::vector<double> latencies_s;
  std::uint64_t recuts = 0;
  std::uint64_t local_decisions = 0;
  double mean_s = 0;
  double p95_s = 0;
};

PolicyResult run_policy(ctrl::PolicyKind policy, const Scenario& scenario,
                        std::uint64_t trial_seed) {
  edge::AppBundle bundle = core::make_benchmark_app(tiny_model(), true);
  core::RuntimeConfig config;
  config.client.profile = weak_client();
  config.client.partition_cut = core::first_pool_cut(*bundle.network);
  config.client.offload_event = "front_complete";
  config.client.supervisor.enabled = true;
  config.client.controller.policy = policy;
  config.client.controller.seed = trial_seed;
  config.client.controller.ignore_env = true;
  config.click_at = core::after_ack_click_time(
      *bundle.network, false, config.client.partition_cut, kHealthyBps);

  obs::Obs obs;
  config.obs = &obs;
  core::OffloadingRuntime runtime(config, std::move(bundle));

  // The load wave: an open-loop flash crowd of background inference jobs
  // submitted to the primary server's scheduler for the middle third of
  // the run. Open loop = the crowd never reacts to the client, so the
  // generator's draws are identical whichever policy runs against it.
  std::unique_ptr<sim::workload::Generator> crowd;
  if (scenario.load_wave()) {
    sim::workload::Config wl;
    wl.clients = 200;
    wl.seed = 77 + trial_seed;
    wl.arrivals.session_rate_per_s = 0.5;
    sim::workload::FlashCrowd surge;
    surge.at_s = config.click_at.to_seconds() + 3 * kThinkSeconds;
    surge.duration_s = 5 * kThinkSeconds;
    surge.multiplier = 120.0;
    wl.arrivals.flash_crowds.push_back(surge);
    wl.session.mean_requests = 2.0;
    wl.session.mean_think_s = 0.5;
    serve::Scheduler& sched = runtime.server().scheduler();
    crowd = std::make_unique<sim::workload::Generator>(
        runtime.simulation(), wl, [&sched](const sim::workload::Request&) {
          sched.submit_opaque(0.02, [](const serve::RequestTiming&) {});
        });
    crowd->start(config.click_at +
                 sim::SimTime::seconds((kClicks + 2) * kThinkSeconds));
  }

  // Advance simulated time in bounded slices instead of running to
  // quiescence: the open-loop crowd schedules itself far into the future,
  // and a full run() would fast-forward past the whole wave between two
  // clicks. Slicing keeps the clicks on the same clock as the crowd.
  const auto advance_through_click = [&runtime](sim::SimTime click_time) {
    runtime.simulation().run_until(click_time);
    sim::SimTime horizon = click_time;
    while (!runtime.client().finished()) {
      horizon = horizon + sim::SimTime::millis(500);
      runtime.simulation().run_until(horizon);
    }
  };

  PolicyResult out;
  util::Samples latency;
  runtime.client().start();
  for (int click = 0; click < kClicks; ++click) {
    runtime.client_link().channels[0]->link_a_to_b().set_bandwidth_bps(
        scenario.uplink_bps_for_click(click));
    sim::SimTime at = click == 0
                          ? config.click_at
                          : runtime.simulation().now() +
                                sim::SimTime::seconds(kThinkSeconds);
    runtime.client().click_at(at);
    advance_through_click(at);
    double s = runtime.client().timeline().inference_seconds();
    out.latencies_s.push_back(s);
    latency.add(s);
  }
  out.recuts = obs.metrics.counter("ctrl.recuts") +
               obs.metrics.counter("ctrl.recuts_local");
  out.local_decisions = obs.metrics.counter("ctrl.local_decisions");
  out.mean_s = latency.mean();
  out.p95_s = latency.percentile(95.0);
  return out;
}

std::string fmt3(double v) { return util::format_fixed(v, 3); }

}  // namespace

int main() {
  bench::print_banner(
      "Online partition control — static vs drift vs bandit",
      "per-click cut selection from live telemetry (measured uplink "
      "bandwidth, server queue depth and batch wait, fleet outstanding); "
      "the static row is the offline Neurosurgeon cut held for the whole "
      "run");

  const Scenario scenarios[] = {
      {"stationary"}, {"bandwidth_shift"}, {"load_wave"}};
  const ctrl::PolicyKind policies[] = {ctrl::PolicyKind::kStatic,
                                       ctrl::PolicyKind::kDrift,
                                       ctrl::PolicyKind::kBandit};

  std::vector<bench::JsonObject> json;
  util::TextTable table;
  table.header({"scenario", "policy", "mean s", "p95 s", "vs static",
                "re-cuts", "local decisions"});
  for (const Scenario& scenario : scenarios) {
    double static_mean = 0;
    for (ctrl::PolicyKind policy : policies) {
      PolicyResult r = run_policy(policy, scenario, /*trial_seed=*/1);
      if (policy == ctrl::PolicyKind::kStatic) static_mean = r.mean_s;
      const double speedup = static_mean > 0 ? static_mean / r.mean_s : 1.0;
      table.row({scenario.name, ctrl::policy_name(policy), fmt3(r.mean_s),
                 fmt3(r.p95_s),
                 policy == ctrl::PolicyKind::kStatic
                     ? "1.000x"
                     : fmt3(speedup) + "x",
                 std::to_string(r.recuts),
                 std::to_string(r.local_decisions)});
      bench::JsonObject row;
      row.set("experiment", "ctrl_sweep")
          .set("scenario", scenario.name)
          .set("policy", ctrl::policy_name(policy))
          .set("clicks", kClicks)
          .set("mean_s", r.mean_s)
          .set("p95_s", r.p95_s)
          .set("speedup_vs_static", speedup)
          .set("recuts", static_cast<double>(r.recuts))
          .set("local_decisions", static_cast<double>(r.local_decisions));
      for (std::size_t i = 0; i < r.latencies_s.size(); ++i) {
        row.set("click_" + std::to_string(i) + "_s", r.latencies_s[i]);
      }
      json.push_back(row);
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNote: on the stationary run all three rows must tie to within "
      "noise — the adaptive policies pay nothing for their telemetry when "
      "the offline model is already right. The wins come from the shifted "
      "scenarios: re-cutting to full-local (or a cheaper split) instead "
      "of pushing snapshots through a collapsed uplink or a flooded "
      "queue.\n");

  return bench::write_json_array("BENCH_ctrl.json", json) ? 0 : 1;
}
