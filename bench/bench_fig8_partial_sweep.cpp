// Fig. 8: inference time with partial inference at various offloading
// points. For each model, sweeps the labeled cut points (input, 1st_conv,
// 1st_pool, 2nd_conv, ...) and runs the full end-to-end protocol at each,
// reporting the per-point inference time, client-side share, and the
// feature-data snapshot size — reproducing the paper's sawtooth (conv
// points are expensive: big features + heavy client compute; pool points
// are cheap) and its conclusion that 1st_pool is the sweet spot.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/offload.h"

int main() {
  using namespace offload;
  bench::print_banner(
      "Fig. 8 — Inference time with partial inference at various "
      "offloading points (seconds)",
      "time does not grow monotonically: it jumps at conv points (feature "
      "data surges, e.g. GoogLeNet 1st_conv ~14.7 MB vs 1st_pool ~2.9 MB) "
      "and drops at pool points; 1st_pool minimizes time among denaturing "
      "points");

  for (const auto& model : nn::benchmark_models()) {
    auto net = model.build(model.seed);
    auto points = core::labeled_cut_points(*net);
    // The paper sweeps the early part of the network; cap at the first
    // five labeled points past the input plus every later pool, so the
    // GoogLeNet stem is covered without sweeping all nine inceptions.
    std::vector<core::CutLabel> sweep;
    for (const auto& p : points) {
      bool early = sweep.size() < 6;
      bool pool = p.kind == nn::LayerKind::kMaxPool ||
                  p.kind == nn::LayerKind::kAvgPool;
      if (early || pool) sweep.push_back(p);
      if (sweep.size() >= 9) break;
    }

    util::TextTable table;
    table.header({"offload point", "inference (s)", "client DNN (s)",
                  "server DNN (s)", "transmit (s)", "feature snapshot"});
    for (const auto& point : sweep) {
      std::fprintf(stderr, "[fig8] %s @ %s...\n", model.app_name,
                   point.label.c_str());
      core::ScenarioOptions opts;
      opts.partial_cut = point.cut;
      core::RunResult r =
          core::run_scenario(model, core::Scenario::kOffloadPartial, opts);
      table.row({point.label, bench::fmt_s(r.inference_seconds),
                 bench::fmt_s(r.breakdown.dnn_execution_client),
                 bench::fmt_s(r.breakdown.dnn_execution_server),
                 bench::fmt_s(r.breakdown.transmission_up +
                              r.breakdown.transmission_down),
                 util::format_bytes(static_cast<double>(
                     r.timeline.snapshot_stats.typed_array_bytes))});
    }
    std::printf("\n--- %s ---\n%s", model.app_name, table.str().c_str());
  }
  std::printf(
      "\nNote: 'input' = full-inference offloading through the partial "
      "app (no denaturing). Feature snapshot = decimal-text encoding of "
      "the transferred tensor, as in the paper's snapshots.\n");
  return 0;
}
