// Capacity planning at population scale — 10^3 → 10^6 simulated clients
// against fleet size and balancing policy.
//
// The full client/channel/jsvm stack simulates tens of clients faithfully;
// this harness answers the fleet-sizing question instead: demand comes
// from sim::workload (open-loop Poisson sessions over a heterogeneous
// million-client population, diurnal-shaped, with a mid-run flash crowd
// and TTL-driven cold/warm model-cache churn), and each edge server is a
// bounded FIFO queue with per-device-class service times plus a
// content-addressed blob cache, routed through the real fleet::Balancer
// policies. Every request either completes on the edge (queueing delay
// emerges from the busy-server timeline) or is shed past the admission
// bound to client-local fallback, exactly the semantics of the full stack.
//
// Each cell is sharded: the client population (sim::workload range
// shards) and the fleet are split into S causally-closed slices, each
// owning its own balancer, servers, and stats, run on a
// sim::PartitionedSimulation with independent partitions
// (lookahead = SimTime::max()). S depends only on the fleet size — never
// on OFFLOAD_SIM_PARTITIONS — and shard results merge in shard order, so
// the workload-result payload is byte-identical at any partition count;
// only the throughput summary row may change across K.
//
// Reported per cell: latency percentiles over all finished inferences,
// the shed rate, and the upload bytes content-addressed dedup saved — the
// three curves a capacity planner needs. Everything runs on the timing-
// wheel simulation core; the 10^6-client sweep is a routine bench run.
//
// Deterministic: two invocations emit byte-identical BENCH_scale.json at
// any OFFLOAD_THREADS / OFFLOAD_SIM_PARTITIONS when
// OFFLOAD_BENCH_DETERMINISTIC=1 zeroes the wall-clock summary fields (CI
// diffs a double run at the smoke sizes; cap the sweep with
// OFFLOAD_SCALE_CLIENTS_MAX=<n>).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/json_writer.h"
#include "src/fleet/balancer.h"
#include "src/sim/partition.h"
#include "src/sim/simulation.h"
#include "src/sim/workload.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace {

using namespace offload;
namespace workload = offload::sim::workload;

constexpr double kDigestBytes = 64;  // content-address offer instead of blob

struct CellConfig {
  std::uint64_t clients = 1000;
  std::size_t fleet_size = 16;
  std::string policy = "least_outstanding";
  bool dedup = true;
  double duration_s = 60;
  double per_client_session_rate = 6e-4;  ///< aggregate scales with clients
  int max_queue = 8;                      ///< per-server admission bound
};

struct CellResult {
  std::uint64_t sessions = 0;
  std::uint64_t requests = 0;
  std::uint64_t cold_sessions = 0;
  std::uint64_t completed_edge = 0;
  std::uint64_t shed = 0;
  std::uint64_t failover_hops = 0;
  std::uint64_t full_uploads = 0;
  std::uint64_t dedup_hits = 0;
  double dedup_saved_mb = 0;
  double p50_s = 0, p99_s = 0, mean_s = 0;
  std::uint64_t events_fired = 0;
  double wall_ms = 0;  ///< wall clock, not part of the byte-diff payload
};

/// Shards per cell: one per 4 servers, capped at 8 — a pure function of
/// the fleet size (never of OFFLOAD_SIM_PARTITIONS), so the shard
/// decomposition and therefore the merged results are identical at any
/// partition count. Every shard keeps >= 4 servers so the balancing
/// policy still has real choices inside a shard.
std::size_t shards_for(std::size_t fleet_size) {
  std::size_t s = fleet_size / 4;
  if (s < 1) s = 1;
  if (s > 8) s = 8;
  return s;
}

struct ServerState {
  sim::SimTime busy_until;
  std::vector<bool> has_model;
};

/// One causally-closed slice of a cell: a population shard, its fleet
/// slice, and all mutable serving state. Touched only by events firing on
/// the shard's home partition.
struct Shard {
  Shard(const fleet::BalancerConfig& bc, std::size_t servers_count,
        std::size_t classes_count)
      : balancer(bc, servers_count),
        servers(servers_count,
                ServerState{sim::SimTime::zero(),
                            std::vector<bool>(classes_count, false)}),
        outstanding(servers_count, 0) {}

  fleet::Balancer balancer;
  std::vector<ServerState> servers;
  std::vector<int> outstanding;
  CellResult res;
  util::Samples latency;
  std::unique_ptr<workload::Generator> gen;
};

double wall_now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

CellResult run_cell(const CellConfig& cell, int partitions) {
  sim::PartitionedSimulation psim(sim::PartitionedSimulation::Options{
      partitions, std::nullopt, sim::SimTime::max()});
  const std::size_t shard_count = shards_for(cell.fleet_size);
  const auto classes = workload::default_device_classes();

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    // Fleet slice [lo, hi) for shard s — same range math as the client
    // shards, so server counts stay balanced for any (fleet, S).
    std::size_t lo = cell.fleet_size * s / shard_count;
    std::size_t hi = cell.fleet_size * (s + 1) / shard_count;
    fleet::BalancerConfig bc;
    bc.policy = cell.policy;
    bc.seed = 42 + static_cast<std::uint64_t>(s);
    shards.push_back(
        std::make_unique<Shard>(bc, hi - lo, classes.size()));
  }

  for (std::size_t s = 0; s < shard_count; ++s) {
    Shard* sh = shards[s].get();
    const int part = static_cast<int>(
        s * static_cast<std::size_t>(partitions) / shard_count);
    sim::Simulation& eng = psim.partition(part);

    workload::Config wl;
    wl.clients = cell.clients;
    wl.seed = 42;
    wl.shard_count = static_cast<std::uint32_t>(shard_count);
    wl.shard_index = static_cast<std::uint32_t>(s);
    wl.arrivals.session_rate_per_s =
        cell.per_client_session_rate * static_cast<double>(cell.clients);
    wl.arrivals.diurnal.enabled = true;
    wl.arrivals.diurnal.period_s = cell.duration_s;  // one compressed "day"
    wl.arrivals.diurnal.trough = 0.4;
    wl.arrivals.diurnal.peak = 1.0;
    wl.arrivals.diurnal.peak_at_frac = 0.5;
    // Flash crowd: 3x arrivals for 5 s right at the diurnal peak.
    wl.arrivals.flash_crowds = {{cell.duration_s * 0.45, 5.0, 3.0}};
    wl.session.mean_requests = 3.0;
    wl.session.mean_think_s = 1.0;
    wl.session.cache_ttl_s = 120.0;
    wl.session.warm_start_fraction = 0.1;

    sh->gen = std::make_unique<workload::Generator>(
        eng, wl,
        [sh, &cell, &classes, &eng](const workload::Request& req) {
          CellResult& out = sh->res;
          const workload::DeviceClass& dc = classes[req.device_class];
          // Sessions stick to a server under consistent hashing; the
          // other policies ignore the key and use the live outstanding
          // counts. The key is the global client id, so stickiness is
          // shard-stable.
          std::vector<std::size_t> candidates = sh->balancer.route(
              "c" + std::to_string(req.client), sh->outstanding);
          std::size_t chosen = sh->servers.size();  // sentinel: shed
          for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (sh->outstanding[candidates[i]] < cell.max_queue) {
              chosen = candidates[i];
              out.failover_hops += i;
              break;
            }
          }
          ++out.requests;
          if (chosen == sh->servers.size()) {
            // Shard-wide admission bound hit: typed shed, client-local
            // fallback (the inference still completes — it just costs
            // device time).
            ++out.shed;
            sh->latency.add(dc.local_fallback_s);
            return;
          }
          ServerState& server = sh->servers[chosen];
          ++sh->outstanding[chosen];

          // Cold sessions pre-send the model before the snapshot can run.
          double upload_s = 0;
          if (req.cold_model) {
            double model_bytes = dc.model_mb * 1024 * 1024;
            if (cell.dedup && server.has_model[req.device_class]) {
              // Content-addressed: the digest offer answers "have", the
              // blob itself never crosses the uplink.
              upload_s = kDigestBytes * 8 / (dc.uplink_mbps * 1e6);
              ++out.dedup_hits;
              out.dedup_saved_mb += (model_bytes - kDigestBytes) / (1024 * 1024);
            } else {
              upload_s = model_bytes * 8 / (dc.uplink_mbps * 1e6);
              server.has_model[req.device_class] = true;
              ++out.full_uploads;
            }
          }

          // FIFO single-lane server: service starts when the model is in
          // and the lane is free; queueing delay emerges from busy_until.
          sim::SimTime ready = req.at + sim::SimTime::seconds(upload_s);
          sim::SimTime start =
              server.busy_until > ready ? server.busy_until : ready;
          sim::SimTime done =
              start + sim::SimTime::seconds(dc.server_service_ms / 1e3);
          server.busy_until = done;
          sim::SimTime arrival = req.at;
          eng.schedule_at(done, [sh, chosen, arrival, done] {
            --sh->outstanding[chosen];
            ++sh->res.completed_edge;
            sh->latency.add((done - arrival).to_seconds());
          });
        });
    sh->gen->start(sim::SimTime::seconds(cell.duration_s));
  }

  double t0 = wall_now_ms();
  std::size_t fired = psim.run();
  double t1 = wall_now_ms();

  // Deterministic merge in shard order — identical at any K.
  CellResult out;
  util::Samples latency;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const CellResult& r = shards[s]->res;
    out.requests += r.requests;
    out.completed_edge += r.completed_edge;
    out.shed += r.shed;
    out.failover_hops += r.failover_hops;
    out.full_uploads += r.full_uploads;
    out.dedup_hits += r.dedup_hits;
    out.dedup_saved_mb += r.dedup_saved_mb;
    out.sessions += shards[s]->gen->sessions_started();
    out.cold_sessions += shards[s]->gen->cold_sessions();
    latency.merge(shards[s]->latency);
  }
  out.events_fired = fired;
  out.wall_ms = t1 - t0;
  if (latency.count() > 0) {
    out.p50_s = latency.percentile(50.0);
    out.p99_s = latency.percentile(99.0);
    out.mean_s = latency.mean();
  }
  return out;
}

std::string fmt3(double v) { return util::format_fixed(v, 3); }

std::uint64_t max_clients_from_env() {
  if (const char* env = std::getenv("OFFLOAD_SCALE_CLIENTS_MAX");
      env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1000000;
}

}  // namespace

int main() {
  bench::print_banner(
      "Capacity planning — clients x fleet size x balancing policy",
      "p99 and shed rate stay flat while the fleet covers offered load, "
      "then cliff as the diurnal peak + flash crowd exceed capacity; "
      "content-addressed dedup savings grow with population (large "
      "populations churn cold, but their blobs are already on the edge)");

  const std::uint64_t max_clients = max_clients_from_env();
  const int partitions = sim::PartitionedSimulation::partitions_from_env();
  const bool deterministic =
      std::getenv("OFFLOAD_BENCH_DETERMINISTIC") != nullptr;
  std::printf("partitions (OFFLOAD_SIM_PARTITIONS): %d\n\n", partitions);

  std::vector<bench::JsonObject> json;
  util::TextTable table;
  table.header({"clients", "policy", "servers", "shards", "requests",
                "shed%", "p50 s", "p99 s", "cold%", "dedup MB saved"});

  std::uint64_t total_events = 0;
  double total_wall_ms = 0;
  for (std::uint64_t clients : {std::uint64_t{1000}, std::uint64_t{10000},
                                std::uint64_t{100000},
                                std::uint64_t{1000000}}) {
    if (clients > max_clients) continue;
    for (const char* policy : {"hash", "least_outstanding", "p2c"}) {
      for (std::size_t fleet_size : {std::size_t{4}, std::size_t{16},
                                     std::size_t{64}}) {
        CellConfig cell;
        cell.clients = clients;
        cell.policy = policy;
        cell.fleet_size = fleet_size;
        CellResult r = run_cell(cell, partitions);
        total_events += r.events_fired;
        total_wall_ms += r.wall_ms;
        double shed_rate =
            r.requests > 0
                ? static_cast<double>(r.shed) / static_cast<double>(r.requests)
                : 0;
        double cold_rate =
            r.sessions > 0 ? static_cast<double>(r.cold_sessions) /
                                 static_cast<double>(r.sessions)
                           : 0;
        table.row({std::to_string(clients), policy,
                   std::to_string(fleet_size),
                   std::to_string(shards_for(fleet_size)),
                   std::to_string(r.requests), fmt3(shed_rate * 100),
                   fmt3(r.p50_s), fmt3(r.p99_s), fmt3(cold_rate * 100),
                   fmt3(r.dedup_saved_mb)});
        json.push_back(
            bench::JsonObject()
                .set("experiment", "capacity_planning")
                .set("clients", static_cast<std::int64_t>(clients))
                .set("policy", policy)
                .set("fleet_size", fleet_size)
                .set("shards", shards_for(fleet_size))
                .set("sessions", static_cast<std::int64_t>(r.sessions))
                .set("requests", static_cast<std::int64_t>(r.requests))
                .set("cold_sessions",
                     static_cast<std::int64_t>(r.cold_sessions))
                .set("completed_edge",
                     static_cast<std::int64_t>(r.completed_edge))
                .set("shed", static_cast<std::int64_t>(r.shed))
                .set("shed_rate", shed_rate)
                .set("failover_hops",
                     static_cast<std::int64_t>(r.failover_hops))
                .set("p50_s", r.p50_s)
                .set("p99_s", r.p99_s)
                .set("mean_s", r.mean_s)
                .set("full_uploads",
                     static_cast<std::int64_t>(r.full_uploads))
                .set("dedup_hits", static_cast<std::int64_t>(r.dedup_hits))
                .set("dedup_saved_mb", r.dedup_saved_mb)
                .set("events_fired",
                     static_cast<std::int64_t>(r.events_fired)));
      }
    }
  }
  std::printf("%s", table.str().c_str());

  double events_per_s =
      total_wall_ms > 0 ? static_cast<double>(total_events) /
                              (total_wall_ms / 1e3)
                        : 0;
  std::printf(
      "\nsweep wall clock: %.0f ms, %.2fM events/s at %d partition(s)\n",
      total_wall_ms, events_per_s / 1e6, partitions);
  std::printf(
      "Note: shed inferences complete via client-local fallback, so heavy "
      "shed shows up as a fat p99 (device execution times), not lost "
      "requests. Fleet sizing is read off the smallest fleet whose p99 and "
      "shed rate survive the flash crowd.\n");

  // The only row allowed to differ across partition counts (CI's cross-K
  // byte gate filters on the experiment name). Wall-clock fields are
  // zeroed under OFFLOAD_BENCH_DETERMINISTIC so double runs byte-match.
  json.push_back(bench::JsonObject()
                     .set("experiment", "capacity_planning_throughput")
                     .set("partitions", partitions)
                     .set("events_fired_total",
                          static_cast<std::int64_t>(total_events))
                     .set("wall_ms", deterministic ? 0.0 : total_wall_ms)
                     .set("events_per_s",
                          deterministic ? 0.0 : events_per_s));

  return bench::write_json_array("BENCH_scale.json", json) ? 0 : 1;
}
