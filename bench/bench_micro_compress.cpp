// Microbenchmarks (google-benchmark) for the mlzma compressor used by VM
// overlays: throughput and ratio across content redundancy levels.
#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "src/vmsynth/compress.h"
#include "src/vmsynth/overlay.h"
#include "src/vmsynth/vmimage.h"

namespace {

using namespace offload;

void BM_Compress(benchmark::State& state) {
  const double redundancy = static_cast<double>(state.range(0)) / 100.0;
  util::Bytes input =
      vmsynth::synthetic_file_content(4'000'000, redundancy, 7);
  std::size_t out_size = 0;
  for (auto _ : state) {
    auto c = vmsynth::compress(std::span<const std::uint8_t>(input));
    out_size = c.size();
    benchmark::DoNotOptimize(c);
  }
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(input.size()) *
          static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
  state.counters["ratio"] =
      static_cast<double>(input.size()) / static_cast<double>(out_size);
  state.SetLabel("4MB redundancy=" + std::to_string(state.range(0)) + "%");
}
BENCHMARK(BM_Compress)->Arg(0)->Arg(40)->Arg(57)->Arg(80)->Unit(
    benchmark::kMillisecond);

void BM_Decompress(benchmark::State& state) {
  util::Bytes input = vmsynth::synthetic_file_content(4'000'000, 0.57, 7);
  util::Bytes compressed =
      vmsynth::compress(std::span<const std::uint8_t>(input));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vmsynth::decompress(std::span<const std::uint8_t>(compressed)));
  }
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(input.size()) *
          static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
  state.SetLabel("4MB redundancy=57%");
}
BENCHMARK(BM_Decompress)->Unit(benchmark::kMillisecond);

void BM_OverlayCreate(benchmark::State& state) {
  vmsynth::VmImage base = vmsynth::make_base_image();
  vmsynth::SystemBundleSizes sizes;
  sizes.browser_bytes = 2'000'000;
  sizes.libraries_bytes = 2'000'000;
  sizes.server_program_bytes = 100'000;
  vmsynth::VmImage target = vmsynth::make_customized_image(base, sizes, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmsynth::create_overlay(base, target));
  }
}
BENCHMARK(BM_OverlayCreate)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_OverlaySynthesize(benchmark::State& state) {
  vmsynth::VmImage base = vmsynth::make_base_image();
  vmsynth::SystemBundleSizes sizes;
  sizes.browser_bytes = 2'000'000;
  sizes.libraries_bytes = 2'000'000;
  sizes.server_program_bytes = 100'000;
  vmsynth::VmImage target = vmsynth::make_customized_image(base, sizes, {});
  vmsynth::VmOverlay overlay = vmsynth::create_overlay(base, target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmsynth::synthesize(base, overlay));
  }
}
BENCHMARK(BM_OverlaySynthesize)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  return offload::bench::run_benchmarks_with_json(argc, argv,
                                                  "BENCH_micro_compress.json");
}
