// Fleet scaling — balancing policy × fleet size × offered load.
//
// N clients share one edge fleet; every client pre-sends the same TinyCNN
// model (content-addressed dedup on) and clicks once, 5 ms apart, so
// requests overlap and queue. Servers run a deliberately small admission
// bound (max_queue = 2), so an unbalanced fleet sheds load ("overloaded:"
// → client-local fallback) where a balanced one absorbs it. Reported per
// cell: latency percentiles over completed inferences, the shed rate, and
// the upload bytes the blob cache saved.
//
// Everything is seeded and simulated — two invocations of this binary
// produce byte-identical BENCH_fleet.json (the CI fault matrix diffs it).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/json_writer.h"
#include "src/core/offload.h"
#include "src/util/stats.h"

namespace {

using namespace offload;

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

struct CellResult {
  int requests = 0;
  int completed = 0;
  int shed = 0;
  double p50_s = 0;
  double p99_s = 0;
  std::uint64_t dedup_bytes_saved = 0;
};

CellResult run_cell(const std::string& policy, std::size_t fleet_size,
                    int clients) {
  sim::Simulation sim;
  obs::Obs obs;
  fleet::FleetConfig config;
  config.size = fleet_size;
  config.balancer.policy = policy;
  config.balancer.seed = 42;
  config.dedup = true;
  config.channel = core::RuntimeConfig::default_channel();
  config.server.scheduler.max_queue = 2;  // shed instead of queueing deep
  config.obs = &obs;
  fleet::EdgeFleet fleet(sim, config);

  std::vector<std::unique_ptr<edge::ClientDevice>> devices;
  for (int i = 0; i < clients; ++i) {
    const std::string name = "client" + std::to_string(i);
    fleet::EdgeFleet::ClientLink link = fleet.connect_client(name);
    edge::ClientConfig client_config;
    client_config.obs = &obs;
    fleet.configure_client(client_config, link, name);
    devices.push_back(std::make_unique<edge::ClientDevice>(
        sim, *link.endpoints[0], client_config,
        core::make_benchmark_app(tiny_model(), false)));
    for (std::size_t k = 1; k < link.endpoints.size(); ++k) {
      devices.back()->attach_server(*link.endpoints[k]);
    }
  }
  // Stagger app launches so each pre-send finds the previous client's
  // upload already cached — the dedup steady state — then fire every
  // click at the same instant: a synchronized burst the balancer must
  // spread across the admission bounds.
  for (int i = 0; i < clients; ++i) {
    edge::ClientDevice* device = devices[i].get();
    sim.schedule(sim::SimTime::millis(300 * i), [device] { device->start(); });
  }
  for (auto& device : devices) {
    device->click_at(sim::SimTime::seconds(10));
  }
  sim.run();

  CellResult out;
  out.requests = clients;
  util::Samples latency;
  for (auto& device : devices) {
    if (!device->finished()) continue;
    ++out.completed;
    latency.add(device->timeline().inference_seconds());
  }
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    out.shed += fleet.server(k).stats().snapshots_shed;
  }
  out.dedup_bytes_saved = fleet.dedup_bytes_saved();
  if (out.completed > 0) {
    out.p50_s = latency.percentile(50.0);
    out.p99_s = latency.percentile(99.0);
  }
  return out;
}

std::string fmt3(double v) { return util::format_fixed(v, 3); }

}  // namespace

int main() {
  bench::print_banner(
      "Fleet scaling — policy x fleet size x offered load",
      "overlapping clicks from many clients against a small per-server "
      "admission bound: balanced fleets absorb the burst, unbalanced ones "
      "shed it to client-local fallback; dedup pre-send keeps every "
      "client after the first digest-sized");

  std::vector<bench::JsonObject> json;
  util::TextTable table;
  table.header({"policy", "servers", "clients", "completed", "shed",
                "p50 s", "p99 s", "dedup KB saved"});
  for (const char* policy : {"hash", "least_outstanding", "p2c"}) {
    for (std::size_t fleet_size : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
      for (int clients : {2, 6, 12}) {
        CellResult r = run_cell(policy, fleet_size, clients);
        const double shed_rate =
            static_cast<double>(r.shed) / static_cast<double>(r.requests);
        table.row({policy, std::to_string(fleet_size),
                   std::to_string(clients), std::to_string(r.completed),
                   std::to_string(r.shed), fmt3(r.p50_s), fmt3(r.p99_s),
                   std::to_string(r.dedup_bytes_saved / 1024)});
        json.push_back(
            bench::JsonObject()
                .set("experiment", "fleet_scaling")
                .set("policy", policy)
                .set("fleet_size", fleet_size)
                .set("clients", clients)
                .set("requests", r.requests)
                .set("completed", r.completed)
                .set("shed", r.shed)
                .set("shed_rate", shed_rate)
                .set("p50_s", r.p50_s)
                .set("p99_s", r.p99_s)
                .set("dedup_bytes_saved",
                     static_cast<std::int64_t>(r.dedup_bytes_saved)));
      }
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNote: every inference completes — shed requests finish via "
      "client-local fallback, which is why heavy shed rates show up as a "
      "fatter p99, not as lost requests. Dedup savings grow linearly with "
      "the clients that share a warm server.\n");

  return bench::write_json_array("BENCH_fleet.json", json) ? 0 : 1;
}
