// Machine-readable output for the google-benchmark micro benches: a
// reporter that mirrors the console output and additionally collects every
// run into a JSON array (op, shape label, wall ns/iter, user counters,
// thread count) written next to the binary — BENCH_micro_nn.json etc. —
// so the perf trajectory is trackable across PRs. The rendering itself
// lives in json_writer.h, shared with the plain experiment benches.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench/json_writer.h"
#include "src/util/thread_pool.h"

namespace offload::bench {

class JsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      JsonObject e;
      e.set("op", run.benchmark_name());
      e.set("shape", run.report_label);
      e.set("wall_ns", run.real_accumulated_time * 1e9 / iters, "%.1f");
      e.set("threads", util::default_pool().size());
      for (const auto& [name, counter] : run.counters) {
        e.set(name, static_cast<double>(counter.value));
      }
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  /// Write everything collected so far as a JSON array to `path`.
  /// Returns false (and prints to stderr) if the file cannot be written.
  bool write_json(const std::string& path) const {
    return write_json_array(path, entries_);
  }

 private:
  std::vector<JsonObject> entries_;
};

/// Shared main() body: run all registered benchmarks with a JsonReporter
/// and drop the JSON file. Returns a process exit code.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const char* json_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return reporter.write_json(json_path) ? 0 : 1;
}

}  // namespace offload::bench
