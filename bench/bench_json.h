// Machine-readable output for the google-benchmark micro benches: a
// reporter that mirrors the console output and additionally collects every
// run into a JSON array (op, shape label, wall ns/iter, user counters,
// thread count) written next to the binary — BENCH_micro_nn.json etc. —
// so the perf trajectory is trackable across PRs.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/util/thread_pool.h"

namespace offload::bench {

class JsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Entry e;
      e.op = run.benchmark_name();
      e.shape = run.report_label;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      e.wall_ns = run.real_accumulated_time * 1e9 / iters;
      for (const auto& [name, counter] : run.counters) {
        e.counters.emplace_back(name, counter.value);
      }
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  /// Write everything collected so far as a JSON array to `path`.
  /// Returns false (and prints to stderr) if the file cannot be written.
  bool write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return false;
    }
    const std::size_t threads = util::default_pool().size();
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "  {\"op\": \"%s\", \"shape\": \"%s\", ",
                   json_escape(e.op).c_str(), json_escape(e.shape).c_str());
      std::fprintf(f, "\"wall_ns\": %.1f, \"threads\": %zu", e.wall_ns,
                   threads);
      for (const auto& [name, value] : e.counters) {
        std::fprintf(f, ", \"%s\": %.6g", json_escape(name).c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string op;
    std::string shape;
    double wall_ns = 0;
    std::vector<std::pair<std::string, double>> counters;
  };

  static std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::vector<Entry> entries_;
};

/// Shared main() body: run all registered benchmarks with a JsonReporter
/// and drop the JSON file. Returns a process exit code.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const char* json_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return reporter.write_json(json_path) ? 0 : 1;
}

}  // namespace offload::bench
