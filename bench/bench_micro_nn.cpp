// Microbenchmarks (google-benchmark) for the DNN engine kernels: the
// GoogLeNet stem conv, pooling, fc, LRN, and whole-network forwards.
// These measure *wall-clock* engine speed (the simulated device times used
// by the experiments are derived from FLOP counts, not from these).
#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/dense.h"
#include "src/nn/lrn.h"
#include "src/nn/models.h"
#include "src/nn/pool.h"

namespace {

using namespace offload;
using nn::Shape;
using nn::Tensor;

Tensor make_input(Shape shape, std::uint64_t seed = 1) {
  util::Pcg32 rng(seed);
  return Tensor::random_uniform(std::move(shape), rng, 0.0f, 1.0f);
}

void BM_ConvGoogLeNetStem(benchmark::State& state) {
  // conv1 of GoogLeNet: 7x7/2 pad 3, 3→64 channels on 224².
  nn::ConvLayer conv("conv1", {.in_channels = 3, .out_channels = 64,
                               .kernel = 7, .stride = 2, .pad = 3});
  util::Pcg32 rng(2);
  conv.init_params(rng);
  Tensor in = make_input(Shape{3, 224, 224});
  const Tensor* ins[] = {&in};
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(ins));
  }
  Shape shapes[] = {in.shape()};
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(conv.flops(shapes)) * static_cast<double>(
          state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
  state.SetLabel("3x224x224 7x7/2p3 -> 64x112x112");
}
BENCHMARK(BM_ConvGoogLeNetStem)->Unit(benchmark::kMillisecond);

void BM_Conv3x3(benchmark::State& state) {
  const auto channels = state.range(0);
  nn::ConvLayer conv("c", {.in_channels = channels, .out_channels = channels,
                           .kernel = 3, .stride = 1, .pad = 1});
  util::Pcg32 rng(2);
  conv.init_params(rng);
  Tensor in = make_input(Shape{channels, 56, 56});
  const Tensor* ins[] = {&in};
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(ins));
  }
  Shape shapes[] = {in.shape()};
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(conv.flops(shapes)) * static_cast<double>(
          state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
  state.SetLabel(std::to_string(channels) + "x56x56 3x3/1p1");
}
BENCHMARK(BM_Conv3x3)->Arg(32)->Arg(64)->Arg(128)->Unit(
    benchmark::kMillisecond);

void BM_MaxPool(benchmark::State& state) {
  nn::PoolLayer pool("p", {.kernel = 3, .stride = 2, .pad = 0}, false);
  Tensor in = make_input(Shape{64, 112, 112});
  const Tensor* ins[] = {&in};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.forward(ins));
  }
  state.SetLabel("64x112x112 3x3/2");
}
BENCHMARK(BM_MaxPool)->Unit(benchmark::kMillisecond);

void BM_FullyConnected(benchmark::State& state) {
  nn::FullyConnectedLayer fc("fc", 18816, 512);  // AgeNet fc6
  util::Pcg32 rng(2);
  fc.init_params(rng);
  Tensor in = make_input(Shape{18816});
  const Tensor* ins[] = {&in};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc.forward(ins));
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * 18816 * 512 * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
  state.SetLabel("18816 -> 512");
}
BENCHMARK(BM_FullyConnected)->Unit(benchmark::kMillisecond);

void BM_Lrn(benchmark::State& state) {
  nn::LrnLayer lrn("n", nn::LrnConfig{});
  Tensor in = make_input(Shape{64, 56, 56});
  const Tensor* ins[] = {&in};
  for (auto _ : state) {
    benchmark::DoNotOptimize(lrn.forward(ins));
  }
  state.SetLabel("64x56x56 n=5");
}
BENCHMARK(BM_Lrn)->Unit(benchmark::kMillisecond);

void BM_TinyCnnForward(benchmark::State& state) {
  auto net = nn::build_tiny_cnn(17);
  Tensor in = make_input(Shape{3, 32, 32});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->forward(in));
  }
  state.SetLabel("3x32x32");
}
BENCHMARK(BM_TinyCnnForward)->Unit(benchmark::kMillisecond);

void BM_AgeNetForward(benchmark::State& state) {
  auto net = nn::build_agenet(11);
  Tensor in = make_input(Shape{3, 227, 227});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->forward(in));
  }
  state.SetLabel("3x227x227");
}
BENCHMARK(BM_AgeNetForward)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_GoogLeNetForward(benchmark::State& state) {
  auto net = nn::build_googlenet(7);
  Tensor in = make_input(Shape{3, 224, 224});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->forward(in));
  }
  state.SetLabel("3x224x224");
}
BENCHMARK(BM_GoogLeNetForward)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  return offload::bench::run_benchmarks_with_json(argc, argv,
                                                  "BENCH_micro_nn.json");
}
