// Shared helpers for the paper-figure bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "src/util/strings.h"
#include "src/util/table.h"

namespace offload::bench {

inline void print_banner(const std::string& title,
                         const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("--------------------------------------------------------------\n");
  std::printf("Expected shape (from the paper): %s\n", expectation.c_str());
  std::printf("==============================================================\n");
}

inline std::string fmt_s(double seconds) {
  return util::format_fixed(seconds, seconds < 0.1 ? 4 : 2);
}

}  // namespace offload::bench
