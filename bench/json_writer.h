// Plain JSON emission shared by every bench binary: the google-benchmark
// micro benches (via bench_json.h) and the plain experiment binaries like
// bench_multiclient. Flat objects of ordered scalar fields, written as a
// JSON array — enough structure for cross-PR tracking without pulling in
// a JSON library.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace offload::bench {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// A flat JSON object: ordered key → scalar fields, rendered as they are
/// set. Keys keep insertion order so diffs between runs stay readable.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + json_escape(value) + "\"");
    return *this;
  }
  JsonObject& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  /// `fmt` is a printf format for one double (default keeps 6 significant
  /// digits, matching the old bench_json counter output).
  JsonObject& set(const std::string& key, double value,
                  const char* fmt = "%.6g") {
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonObject& set(const std::string& key, std::int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonObject& set(const std::string& key, int value) {
    return set(key, static_cast<std::int64_t>(value));
  }
  JsonObject& set(const std::string& key, std::size_t value) {
    return set(key, static_cast<std::int64_t>(value));
  }

  std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + json_escape(fields_[i].first) + "\": " +
             fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Write `entries` as a JSON array to `path`. Returns false (and prints to
/// stderr) if the file cannot be written.
inline bool write_json_array(const std::string& path,
                             const std::vector<JsonObject>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "json_writer: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(f, "  %s%s\n", entries[i].str().c_str(),
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

}  // namespace offload::bench
