// Fig. 1: GoogLeNet architecture and intermediate feature-data dimensions.
// Prints every trunk (cut-point) layer with its output dimensions, raw
// bytes, and the snapshot-text bytes the feature would occupy — the
// quantities behind the paper's conv-vs-pool feature-size discussion.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/experiment.h"
#include "src/nn/models.h"

int main() {
  using namespace offload;
  bench::print_banner(
      "Fig. 1 — GoogLeNet architecture & feature data dimensions",
      "224x224x3 input -> 56x56x64 after the stem -> inception stacks -> "
      "1x1x1024 -> fc1000; conv outputs balloon, pool outputs shrink");

  auto net = nn::build_googlenet();
  const auto& analysis = net->analyze();

  util::TextTable table;
  table.header({"layer", "kind", "output (CxHxW)", "raw bytes",
                "~snapshot text", "cum. GFLOPs"});
  // Walk trunk cut points in order, accumulating FLOPs over *all* nodes.
  std::size_t next_node = 0;
  std::uint64_t flops_acc = 0;
  for (std::size_t cut : net->cut_points()) {
    while (next_node <= cut) {
      flops_acc += analysis.flops[next_node];
      ++next_node;
    }
    const nn::Layer& layer = net->layer(cut);
    std::uint64_t raw = analysis.output_bytes[cut];
    // Decimal text costs ~3.4 bytes per raw byte (measured by the
    // snapshot micro bench); report the estimate the partitioner uses.
    auto text = static_cast<std::uint64_t>(static_cast<double>(raw) * 3.4);
    table.row({layer.name(), nn::layer_kind_name(layer.kind()),
               analysis.shapes[cut].str(), util::format_bytes(
                   static_cast<double>(raw)),
               util::format_bytes(static_cast<double>(text)),
               util::format_fixed(static_cast<double>(flops_acc) / 1e9, 3)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nTotals: %zu layers, %.2fM parameters (%s), %.2f GFLOPs/forward\n",
              net->size(),
              static_cast<double>(net->param_count()) / 1e6,
              util::format_bytes(static_cast<double>(net->param_bytes()))
                  .c_str(),
              static_cast<double>(analysis.total_flops) / 1e9);
  std::printf(
      "Paper check: conv1 out 64x112x112 (raw %.1f MB -> ~14.7 MB text), "
      "pool1 out 64x56x56 (~2.9 MB text)\n",
      static_cast<double>(analysis.output_bytes[net->index_of("conv1")]) /
          1e6);
  return 0;
}
