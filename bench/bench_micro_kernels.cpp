// Scalar vs simd vs int8 kernel throughput on the layer shapes that
// dominate the benchmark models (GoogLeNet inception convs and stem,
// AgeNet's grouped conv and 18816x512 fc, plus pool/relu/lrn planes and an
// odd-channel conv that exercises every panel edge path).
//
// Emits BENCH_micro_kernels.json: per (shape, backend) the best-of-reps
// wall time, effective GFLOP/s, speedup over the scalar backend, and a
// CRC32 of the output tensor bytes. The CRCs are the determinism story:
// fp32 backends must produce identical checksums (bit-exact contract,
// DESIGN §11) and the int8 checksum is itself reproducible run to run.
// With OFFLOAD_BENCH_DETERMINISTIC=1 the timing fields are zeroed so the
// CI double-run gate can diff the file byte-for-byte.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/json_writer.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/dense.h"
#include "src/nn/kernels.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"
#include "src/nn/tensor.h"
#include "src/util/crc32.h"
#include "src/util/rng.h"

namespace {

using namespace offload;
using nn::KernelBackend;
using nn::Tensor;

constexpr int kReps = 5;

struct Workload {
  std::string name;
  std::unique_ptr<nn::Layer> layer;
  Tensor input;
  std::uint64_t flops = 0;
  bool has_int8 = false;  ///< conv/fc quantize; pool/relu/lrn stay fp32
};

std::uint64_t layer_flops(const nn::Layer& layer, const Tensor& in) {
  const nn::Shape shapes[] = {in.shape()};
  return layer.flops(shapes);
}

Workload make_conv(std::string name, std::int64_t C, std::int64_t H,
                   std::int64_t M, std::int64_t K, std::int64_t S,
                   std::int64_t P, std::int64_t G, std::uint64_t seed) {
  nn::ConvConfig cfg;
  cfg.in_channels = C;
  cfg.out_channels = M;
  cfg.kernel = K;
  cfg.stride = S;
  cfg.pad = P;
  cfg.groups = G;
  Workload w;
  w.name = std::move(name);
  auto layer = std::make_unique<nn::ConvLayer>("c", cfg);
  util::Pcg32 rng(seed);
  layer->init_params(rng);
  w.input = Tensor::random_uniform({C, H, H}, rng);
  w.flops = layer_flops(*layer, w.input);
  w.layer = std::move(layer);
  w.has_int8 = true;
  return w;
}

std::vector<Workload> build_workloads() {
  std::vector<Workload> ws;
  // GoogLeNet inception_3a 3x3: the server-class GEMM shape the
  // speedup acceptance gate reads.
  ws.push_back(make_conv("conv3x3_96x28_to_128", 96, 28, 128, 3, 1, 1, 1, 21));
  // Inception 1x1 reduction: pure GEMM, no im2col.
  ws.push_back(make_conv("conv1x1_192x28_to_64", 192, 28, 64, 1, 1, 0, 1, 22));
  // Stem-style 7x7 stride 2 (3 input channels, tall im2col).
  ws.push_back(make_conv("conv7x7s2_3x112_to_64", 3, 112, 64, 7, 2, 3, 1, 23));
  // AgeNet-style grouped 5x5.
  ws.push_back(make_conv("conv5x5g2_96x14_to_256", 96, 14, 256, 5, 1, 2, 2, 24));
  // Odd channel counts: every panel-edge and scalar-tail path.
  ws.push_back(make_conv("conv3x3_13x30_to_27", 13, 30, 27, 3, 1, 1, 1, 25));

  {
    Workload w;  // AgeNet fc6: 18816 -> 512, the big fc in the suite
    w.name = "fc_18816_to_512";
    auto layer = std::make_unique<nn::FullyConnectedLayer>("fc", 18816, 512);
    util::Pcg32 rng(26);
    layer->init_params(rng);
    w.input = Tensor::random_uniform({std::int64_t{18816}}, rng);
    w.flops = layer_flops(*layer, w.input);
    w.layer = std::move(layer);
    w.has_int8 = true;
    ws.push_back(std::move(w));
  }
  {
    Workload w;  // GoogLeNet classifier
    w.name = "fc_1024_to_1000";
    auto layer = std::make_unique<nn::FullyConnectedLayer>("fc", 1024, 1000);
    util::Pcg32 rng(27);
    layer->init_params(rng);
    w.input = Tensor::random_uniform({std::int64_t{1024}}, rng);
    w.flops = layer_flops(*layer, w.input);
    w.layer = std::move(layer);
    w.has_int8 = true;
    ws.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "maxpool3x3s2_192x56";
    nn::PoolConfig cfg;
    cfg.kernel = 3;
    cfg.stride = 2;
    cfg.pad = 0;
    w.layer = std::make_unique<nn::PoolLayer>("p", cfg, false);
    util::Pcg32 rng(28);
    w.input = Tensor::random_uniform({192, 56, 56}, rng);
    w.flops = layer_flops(*w.layer, w.input);
    ws.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "relu_64x112x112";
    w.layer = std::make_unique<nn::ReluLayer>("r");
    util::Pcg32 rng(29);
    w.input = Tensor::random_uniform({64, 112, 112}, rng);
    w.flops = layer_flops(*w.layer, w.input);
    ws.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "lrn5_64x56x56";
    w.layer = std::make_unique<nn::LrnLayer>("l", nn::LrnConfig{});
    util::Pcg32 rng(30);
    w.input = Tensor::random_uniform({64, 56, 56}, rng);
    w.flops = layer_flops(*w.layer, w.input);
    ws.push_back(std::move(w));
  }
  return ws;
}

struct Measurement {
  double best_ms = 0.0;
  std::uint32_t crc = 0;
};

Measurement measure(const Workload& w, KernelBackend k) {
  nn::ScopedKernelBackend scoped(k);
  const Tensor* ins[] = {&w.input};
  Measurement m;
  Tensor out = w.layer->forward(ins);  // warm-up: packs weights, pages maps
  m.crc = util::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(out.data().data()),
      out.data().size() * sizeof(float)));
  m.best_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    out = w.layer->forward(ins);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < m.best_ms) m.best_ms = ms;
  }
  return m;
}

}  // namespace

int main() {
  const bool deterministic =
      std::getenv("OFFLOAD_BENCH_DETERMINISTIC") != nullptr;
  const std::vector<Workload> workloads = build_workloads();
  std::vector<bench::JsonObject> json;
  std::printf("%-24s %-7s %10s %9s %9s  %s\n", "shape", "backend", "best_ms",
              "gflops", "speedup", "crc32");
  for (const Workload& w : workloads) {
    double scalar_ms = 0.0;
    std::uint32_t scalar_crc = 0;
    for (KernelBackend k :
         {KernelBackend::kScalar, KernelBackend::kSimd, KernelBackend::kInt8}) {
      if (k == KernelBackend::kInt8 && !w.has_int8) continue;
      const Measurement m = measure(w, k);
      if (k == KernelBackend::kScalar) {
        scalar_ms = m.best_ms;
        scalar_crc = m.crc;
      }
      const double speedup = m.best_ms > 0 ? scalar_ms / m.best_ms : 0.0;
      const double gflops =
          m.best_ms > 0 ? static_cast<double>(w.flops) / (m.best_ms * 1e6)
                        : 0.0;
      char crc_hex[16];
      std::snprintf(crc_hex, sizeof crc_hex, "%08x", m.crc);
      std::printf("%-24s %-7s %10.3f %9.2f %9.2f  %s%s\n", w.name.c_str(),
                  nn::kernel_backend_name(k), m.best_ms, gflops, speedup,
                  crc_hex,
                  k != KernelBackend::kInt8 && m.crc != scalar_crc
                      ? "  <-- fp32 CRC MISMATCH"
                      : "");
      bench::JsonObject o;
      o.set("shape", w.name)
          .set("backend", nn::kernel_backend_name(k))
          .set("flops", static_cast<std::int64_t>(w.flops))
          .set("best_ms", deterministic ? 0.0 : m.best_ms, "%.4f")
          .set("gflops", deterministic ? 0.0 : gflops, "%.3f")
          .set("speedup_vs_scalar", deterministic ? 0.0 : speedup, "%.3f")
          .set("output_crc32", std::string(crc_hex))
          .set("fp32_bit_exact",
               k == KernelBackend::kInt8
                   ? std::string("n/a")
                   : std::string(m.crc == scalar_crc ? "yes" : "NO"));
      json.push_back(std::move(o));
    }
  }
  return bench::write_json_array("BENCH_micro_kernels.json", json) ? 0 : 1;
}
