// Scheduler micro-benchmark: schedule / steady-state churn / cancel /
// drain throughput and resident-memory cost for three discrete-event
// scheduler implementations at 10^3 → 10^6 pending events:
//
//   seed_heap — the original engine verbatim: std::priority_queue over
//               heap-allocated std::function closures, an unordered_set
//               for cancellation, and a per-fire closure copy out of the
//               queue (vendored here so the speedup this PR claims stays
//               pinned in the perf trajectory).
//   heap      — the current binary-heap backend: POD keys in the queue,
//               closures slab-arena'd, lazy tombstones, no per-fire copy.
//   wheel     — the hierarchical timing wheel (the default backend).
//
// Emits BENCH_micro_sim.json. Throughputs are wall-clock (not part of any
// byte-determinism gate); the acceptance bar is wheel >= 5x seed_heap on
// steady-state churn at 10^6 pending.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "bench/json_writer.h"
#include "src/sim/partition.h"
#include "src/sim/simulation.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace {

using namespace offload;

// ---------------------------------------------------------------------------
// The seed scheduler, vendored verbatim (modulo the class name) from the
// pre-refactor src/sim/simulation.{h,cpp}.

class SeedHeapSim {
 public:
  using EventFn = std::function<void()>;

  sim::SimTime now() const { return now_; }

  std::uint64_t schedule_at(sim::SimTime when, EventFn fn) {
    std::uint64_t seq = next_seq_++;
    queue_.push(Entry{when, seq, std::move(fn)});
    pending_.insert(seq);
    return seq;
  }

  bool cancel(std::uint64_t seq) { return pending_.erase(seq) > 0; }

  bool fire_next() {
    while (!queue_.empty()) {
      Entry e = queue_.top();  // the per-event closure copy this PR removes
      queue_.pop();
      if (pending_.erase(e.seq) == 0) continue;
      now_ = e.when;
      e.fn();
      return true;
    }
    return false;
  }

  std::size_t pending() const { return pending_.size(); }

 private:
  struct Entry {
    sim::SimTime when;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  sim::SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_;
};

// ---------------------------------------------------------------------------

/// Representative event capture: a `this`-style pointer plus a few words
/// of context (~40 bytes). Fits UniqueFunction's 48-byte inline buffer;
/// exceeds libstdc++ std::function's ~16-byte SBO, so the seed scheduler
/// pays a heap allocation per schedule and another per fire.
struct Capture {
  std::uint64_t* counter;
  std::uint64_t a, b, c, d;
  void operator()() const { *counter += a ^ b ^ c ^ d; }
};

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Current resident set size in MiB (Linux; 0 elsewhere).
double rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  double kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::atof(line + 6);
      break;
    }
  }
  std::fclose(f);
  return kb / 1024.0;
}

struct PhaseResult {
  double schedule_mps = 0;  ///< million events scheduled per second
  double churn_mps = 0;     ///< steady-state fire-one/schedule-one pairs
  double cancel_mps = 0;
  double drain_mps = 0;
  double populate_rss_mib = 0;  ///< RSS growth while filling N pending
};

/// One full measurement cycle against any scheduler with a common shim.
template <typename Schedule, typename Cancel, typename Fire>
PhaseResult measure(std::size_t n, Schedule&& schedule, Cancel&& cancel,
                    Fire&& fire) {
  util::Pcg32 rng(n, 0xbe9c4);
  std::uint64_t sink = 0;
  auto delay = [&rng]() {
    // Uniform over ~2 simulated seconds: spans all wheel levels.
    return sim::SimTime::nanos(1 + rng.next_below(2000000000));
  };
  PhaseResult out;

  // Populate N pending events, watching RSS.
  double rss0 = rss_mib();
  double t0 = now_ms();
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(schedule(delay(), Capture{&sink, i, i + 1, i + 2, i + 3}));
  }
  double t1 = now_ms();
  out.populate_rss_mib = rss_mib() - rss0;
  out.schedule_mps = static_cast<double>(n) / (t1 - t0) / 1e3;

  // Steady-state churn: fire one, schedule one; pending stays at N.
  std::size_t churn_ops = n;
  t0 = now_ms();
  for (std::size_t i = 0; i < churn_ops; ++i) {
    fire();
    schedule(delay(), Capture{&sink, i, i + 1, i + 2, i + 3});
  }
  t1 = now_ms();
  out.churn_mps = static_cast<double>(churn_ops) / (t1 - t0) / 1e3;

  // Cancel half of what we can still address (some ids already fired;
  // failed cancels are part of the measured work, as in real timer use).
  t0 = now_ms();
  for (std::size_t i = 0; i < ids.size(); i += 2) cancel(ids[i]);
  t1 = now_ms();
  out.cancel_mps = static_cast<double>(ids.size() / 2) / (t1 - t0) / 1e3;

  // Drain everything left.
  std::size_t drained = 0;
  t0 = now_ms();
  while (fire()) ++drained;
  t1 = now_ms();
  out.drain_mps = static_cast<double>(drained) / (t1 - t0) / 1e3;
  if (sink == 0xdeadbeef) std::printf("(unreachable)\n");
  return out;
}

PhaseResult measure_seed(std::size_t n) {
  SeedHeapSim sim;
  return measure(
      n, [&](sim::SimTime d, Capture c) { return sim.schedule_at(sim.now() + d, c); },
      [&](std::uint64_t id) { return sim.cancel(id); },
      [&] { return sim.fire_next(); });
}

PhaseResult measure_current(std::size_t n, sim::SchedulerKind kind) {
  sim::Simulation sim(kind);
  std::vector<sim::EventHandle> handles;
  handles.reserve(2 * n + 16);
  return measure(
      n,
      [&](sim::SimTime d, Capture c) {
        handles.push_back(sim.schedule(d, c));
        return handles.size() - 1;  // id = index into the handle table
      },
      [&](std::uint64_t id) { return sim.cancel(handles[id]); },
      [&] { return sim.step(); });
}

// ---------------------------------------------------------------------------
// Partition axis: the same steady-state churn shape driven through
// sim::PartitionedSimulation at K ∈ {1, 2, 4, 8}. Each partition owns
// n / K self-rescheduling tokens; a 1 ms conservative lookahead forces
// real safe windows and merge barriers (≈ n / 2000 events per window at
// the 2-simulated-second delay span), and 1/64 of fires hop the token to
// the neighbouring partition through the mailbox path.

struct ChurnPart {
  sim::PartitionedSimulation* psim = nullptr;
  int index = 0;
  int k = 1;
  util::Pcg32 rng;
  std::uint64_t remaining = 0;  ///< reschedules left in this partition
  std::uint64_t stamp = 0;
  std::uint64_t sink = 0;
};

void churn_token(ChurnPart* part);

struct ChurnCapture {
  ChurnPart* part;
  void operator()() const { churn_token(part); }
};

void churn_token(ChurnPart* part) {
  part->sink += part->rng.next_u32();
  if (part->remaining == 0) return;
  --part->remaining;
  sim::Simulation& eng = part->psim->partition(part->index);
  sim::SimTime delay = sim::SimTime::nanos(1 + part->rng.next_below(2000000000));
  if (part->rng.next_below(64) == 0) {
    // Hop to the neighbour: exercises the post/merge path under load.
    int to = (part->index + 1) % part->k;
    ChurnPart* peer = part + (to - part->index);
    part->psim->post(
        part->index, to, eng.now() + part->psim->lookahead() + delay,
        (static_cast<std::uint64_t>(part->index) << 48) | part->stamp++,
        ChurnCapture{peer});
  } else {
    eng.schedule(delay, ChurnCapture{part});
  }
}

struct PartitionChurnResult {
  double churn_mps = 0;
  std::uint64_t rounds = 0;
};

PartitionChurnResult measure_partitioned(std::size_t n, int k) {
  sim::PartitionedSimulation psim(sim::PartitionedSimulation::Options{
      k, sim::SchedulerKind::kWheel, sim::SimTime::millis(1)});
  std::vector<ChurnPart> parts(static_cast<std::size_t>(k));
  for (int p = 0; p < k; ++p) {
    parts[p].psim = &psim;
    parts[p].index = p;
    parts[p].k = k;
    parts[p].rng = util::Pcg32(n + static_cast<std::uint64_t>(p), 0x9a17);
    parts[p].remaining = n / static_cast<std::size_t>(k);
  }
  for (int p = 0; p < k; ++p) {
    sim::Simulation& eng = psim.partition(p);
    for (std::size_t i = 0; i < n / static_cast<std::size_t>(k); ++i) {
      eng.schedule(
          sim::SimTime::nanos(1 + parts[p].rng.next_below(2000000000)),
          ChurnCapture{&parts[p]});
    }
  }
  double t0 = now_ms();
  std::size_t fired = psim.run();
  double t1 = now_ms();
  PartitionChurnResult out;
  out.churn_mps = static_cast<double>(fired) / (t1 - t0) / 1e3;
  out.rounds = psim.rounds();
  return out;
}

std::string fmt2(double v) { return util::format_fixed(v, 2); }

/// Best-of-N: rerun the whole cycle and keep each phase's fastest rep.
/// Wall-clock microbenchmarks on a shared machine see ±10-15% interference
/// noise; the max-throughput estimator rejects it (every scheduler gets
/// the same treatment, so the comparison stays fair).
template <typename MeasureOnce>
PhaseResult best_of(int reps, MeasureOnce&& once) {
  PhaseResult best;
  for (int i = 0; i < reps; ++i) {
    PhaseResult r = once();
    best.schedule_mps = std::max(best.schedule_mps, r.schedule_mps);
    best.churn_mps = std::max(best.churn_mps, r.churn_mps);
    best.cancel_mps = std::max(best.cancel_mps, r.cancel_mps);
    best.drain_mps = std::max(best.drain_mps, r.drain_mps);
    // RSS growth is only observable on the first rep (the allocator
    // recycles the arena afterwards); max() keeps that one.
    best.populate_rss_mib = std::max(best.populate_rss_mib, r.populate_rss_mib);
  }
  return best;
}

int reps_from_env() {
  if (const char* env = std::getenv("OFFLOAD_BENCH_REPS");
      env != nullptr && *env != '\0') {
    int reps = std::atoi(env);
    if (reps > 0) return reps;
  }
  return 5;
}

}  // namespace

int main() {
  bench::print_banner(
      "Scheduler micro-bench — seed_heap vs heap vs wheel",
      "timing wheel sustains >=5x the seed scheduler's steady-state event "
      "churn at 10^6 pending events, with flat per-event memory (slab "
      "arena + inline closures vs per-closure heap cells)");

  std::vector<bench::JsonObject> json;
  util::TextTable table;
  table.header({"scheduler", "pending", "schedule M/s", "churn M/s",
                "cancel M/s", "drain M/s", "populate RSS MiB"});

  const std::size_t sizes[] = {1000, 10000, 100000, 1000000};
  const int reps = reps_from_env();
  double seed_churn_1m = 0, wheel_churn_1m = 0;
  for (std::size_t n : sizes) {
    for (const char* name : {"seed_heap", "heap", "wheel"}) {
      PhaseResult r;
      if (std::string(name) == "seed_heap") {
        r = best_of(reps, [&] { return measure_seed(n); });
      } else if (std::string(name) == "heap") {
        r = best_of(reps,
                    [&] { return measure_current(n, sim::SchedulerKind::kHeap); });
      } else {
        r = best_of(reps, [&] {
          return measure_current(n, sim::SchedulerKind::kWheel);
        });
      }
      if (n == 1000000 && std::string(name) == "seed_heap") {
        seed_churn_1m = r.churn_mps;
      }
      if (n == 1000000 && std::string(name) == "wheel") {
        wheel_churn_1m = r.churn_mps;
      }
      table.row({name, std::to_string(n), fmt2(r.schedule_mps),
                 fmt2(r.churn_mps), fmt2(r.cancel_mps), fmt2(r.drain_mps),
                 fmt2(r.populate_rss_mib)});
      json.push_back(bench::JsonObject()
                         .set("experiment", "micro_sim")
                         .set("scheduler", name)
                         .set("pending", n)
                         .set("schedule_mps", r.schedule_mps)
                         .set("churn_mps", r.churn_mps)
                         .set("cancel_mps", r.cancel_mps)
                         .set("drain_mps", r.drain_mps)
                         .set("populate_rss_mib", r.populate_rss_mib));
    }
  }
  std::printf("%s", table.str().c_str());

  // Partition axis: the same churn shape through the partitioned engine.
  util::TextTable ptable;
  ptable.header({"pending", "partitions", "churn M/s", "merge rounds"});
  double part_churn_k1_1m = 0, part_churn_k4_1m = 0;
  for (std::size_t n : {std::size_t{100000}, std::size_t{1000000}}) {
    for (int k : {1, 2, 4, 8}) {
      PartitionChurnResult best;
      for (int i = 0; i < reps; ++i) {
        PartitionChurnResult r = measure_partitioned(n, k);
        if (r.churn_mps > best.churn_mps) best = r;
      }
      if (n == 1000000 && k == 1) part_churn_k1_1m = best.churn_mps;
      if (n == 1000000 && k == 4) part_churn_k4_1m = best.churn_mps;
      ptable.row({std::to_string(n), std::to_string(k),
                  fmt2(best.churn_mps), std::to_string(best.rounds)});
      json.push_back(bench::JsonObject()
                         .set("experiment", "micro_sim_partition")
                         .set("scheduler", "wheel")
                         .set("pending", n)
                         .set("partitions", k)
                         .set("churn_mps", best.churn_mps)
                         .set("rounds", static_cast<std::int64_t>(best.rounds)));
    }
  }
  std::printf("\n%s", ptable.str().c_str());

  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  double speedup = seed_churn_1m > 0 ? wheel_churn_1m / seed_churn_1m : 0;
  unsigned cores = std::thread::hardware_concurrency();
  double part_speedup =
      part_churn_k1_1m > 0 ? part_churn_k4_1m / part_churn_k1_1m : 0;
  std::printf(
      "\nwheel vs seed_heap churn speedup at 10^6 pending: %.1fx "
      "(acceptance bar: >=5x)\n"
      "partitioned churn K=4 vs K=1 at 10^6 pending: %.2fx "
      "(design target: >=2x on >=4 cores; this host has %u)\n"
      "peak process RSS: %.1f MiB\n",
      speedup, part_speedup, cores,
      static_cast<double>(ru.ru_maxrss) / 1024.0);
  json.push_back(bench::JsonObject()
                     .set("experiment", "micro_sim_summary")
                     .set("wheel_vs_seed_churn_speedup_1m", speedup)
                     .set("partition_churn_speedup_k4_1m", part_speedup)
                     .set("host_cores", static_cast<std::int64_t>(cores))
                     .set("peak_rss_mib",
                          static_cast<double>(ru.ru_maxrss) / 1024.0));

  return bench::write_json_array("BENCH_micro_sim.json", json) ? 0 : 1;
}
