// Tier topology — the shed-vs-escalate frontier under a flash crowd.
//
// The bench_fleet workload (N clients, synchronized clicks, per-server
// admission bound max_queue = 2) is replayed three ways: a flat fleet
// that sheds its overflow to client-local fallback, the same fleet with
// an edge→cloud tier that escalates the overflow instead, and the tier
// with deterministic work stealing between the edges on top. Reported
// per cell: how many inferences stayed offloaded, where the overflow
// went (shed / escalated / stolen / relay failures), and the latency
// percentiles the choice buys.
//
// Everything is seeded and simulated — two invocations of this binary
// produce byte-identical BENCH_tiers.json (the CI fault matrix diffs it).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/json_writer.h"
#include "src/core/offload.h"
#include "src/tier/topology.h"
#include "src/util/stats.h"

namespace {

using namespace offload;

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

enum class Mode { kShed, kEscalate, kEscalateSteal };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kShed: return "shed";
    case Mode::kEscalate: return "escalate";
    case Mode::kEscalateSteal: return "escalate+steal";
  }
  return "?";
}

struct CellResult {
  int requests = 0;
  int completed = 0;
  int offloaded = 0;
  int local_fallbacks = 0;
  int shed = 0;
  tier::Topology::Stats tier;
  double p50_s = 0;
  double p99_s = 0;
};

/// `pinned` models a routing pathology instead of a balanced burst: the
/// balancer hook is skipped, so every client lands on edge 0 while edge 1
/// idles — the shape work stealing exists for. Pinned cells queue without
/// bound (and slow the server-side snapshot parse) so a backlog actually
/// forms instead of shedding instantly.
CellResult run_cell(Mode mode, int clients, bool pinned) {
  sim::Simulation sim;
  obs::Obs obs;
  fleet::FleetConfig config;
  config.size = 2;
  config.balancer.policy = "hash";
  config.balancer.seed = 42;
  config.dedup = true;
  config.channel = core::RuntimeConfig::default_channel();
  config.server.scheduler.max_queue = pinned ? 0 : 2;
  if (pinned) config.server.profile.snapshot_parse_Bps = 40e3;
  config.obs = &obs;
  fleet::EdgeFleet fleet(sim, config);

  std::vector<std::unique_ptr<edge::ClientDevice>> devices;
  for (int i = 0; i < clients; ++i) {
    const std::string name = "client" + std::to_string(i);
    fleet::EdgeFleet::ClientLink link = fleet.connect_client(name);
    edge::ClientConfig client_config;
    client_config.obs = &obs;
    if (!pinned) fleet.configure_client(client_config, link, name);
    devices.push_back(std::make_unique<edge::ClientDevice>(
        sim, *link.endpoints[0], client_config,
        core::make_benchmark_app(tiny_model(), false)));
    for (std::size_t k = 1; k < link.endpoints.size(); ++k) {
      devices.back()->attach_server(*link.endpoints[k]);
    }
  }

  // The fleet materializes its servers on the first connect, so the tier
  // (which hooks every server's admission path) must layer on afterwards.
  std::unique_ptr<tier::Topology> topology;
  if (mode != Mode::kShed) {
    tier::TierConfig tier_config;
    tier_config.obs = &obs;
    tier_config.steal = mode == Mode::kEscalateSteal;
    tier_config.steal_seed = 42;
    tier_config.escalation_budget = sim::SimTime::seconds(10);
    topology = std::make_unique<tier::Topology>(sim, fleet,
                                                std::move(tier_config));
  }

  // Stagger app launches so each pre-send finds the previous client's
  // upload already cached, then fire every click at once: a synchronized
  // burst the admission bound cannot absorb.
  for (int i = 0; i < clients; ++i) {
    edge::ClientDevice* device = devices[i].get();
    sim.schedule(sim::SimTime::millis(300 * i), [device] { device->start(); });
  }
  for (auto& device : devices) {
    device->click_at(sim::SimTime::seconds(10));
  }
  sim.run();

  CellResult out;
  out.requests = clients;
  util::Samples latency;
  for (auto& device : devices) {
    if (!device->finished()) continue;
    ++out.completed;
    if (device->timeline().offloaded) {
      ++out.offloaded;
    } else {
      ++out.local_fallbacks;
    }
    latency.add(device->timeline().inference_seconds());
  }
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    out.shed += fleet.server(k).stats().snapshots_shed;
  }
  if (topology) out.tier = topology->stats();
  if (out.completed > 0) {
    out.p50_s = latency.percentile(50.0);
    out.p99_s = latency.percentile(99.0);
  }
  return out;
}

std::string fmt3(double v) { return util::format_fixed(v, 3); }

}  // namespace

int main() {
  bench::print_banner(
      "Tier topology — shed vs escalate under a flash crowd",
      "the bench_fleet burst against a 2-edge fleet with max_queue = 2: "
      "flat fleets shed the overflow to client-local fallback, the "
      "edge->cloud tier escalates it (and, with stealing, drains hot "
      "queues to idle peers) so the inferences stay offloaded");

  std::vector<bench::JsonObject> json;
  util::TextTable table;
  table.header({"mode", "clients", "completed", "offloaded", "local",
                "shed", "escalated", "stolen", "relay fail", "p50 s",
                "p99 s"});
  struct Cell {
    Mode mode;
    int clients;
    bool pinned;
  };
  std::vector<Cell> cells;
  for (Mode mode : {Mode::kShed, Mode::kEscalate, Mode::kEscalateSteal}) {
    for (int clients : {4, 8, 16}) cells.push_back({mode, clients, false});
  }
  // The stealing showcase: every client pinned to edge 0, edge 1 idle.
  for (Mode mode : {Mode::kShed, Mode::kEscalateSteal}) {
    cells.push_back({mode, 6, true});
  }
  for (const Cell& cell : cells) {
    {
      const Mode mode = cell.mode;
      const int clients = cell.clients;
      CellResult r = run_cell(mode, clients, cell.pinned);
      const std::string workload = cell.pinned ? "pinned" : "burst";
      table.row({std::string(mode_name(mode)) + (cell.pinned ? "/pinned" : ""),
                 std::to_string(clients), std::to_string(r.completed),
                 std::to_string(r.offloaded),
                 std::to_string(r.local_fallbacks), std::to_string(r.shed),
                 std::to_string(r.tier.escalations),
                 std::to_string(r.tier.steals),
                 std::to_string(r.tier.relays_failed), fmt3(r.p50_s),
                 fmt3(r.p99_s)});
      json.push_back(
          bench::JsonObject()
              .set("experiment", "tier_frontier")
              .set("mode", mode_name(mode))
              .set("workload", workload)
              .set("clients", clients)
              .set("requests", r.requests)
              .set("completed", r.completed)
              .set("offloaded", r.offloaded)
              .set("local_fallbacks", r.local_fallbacks)
              .set("shed", r.shed)
              .set("escalations", r.tier.escalations)
              .set("steals", r.tier.steals)
              .set("drained", r.tier.drained)
              .set("relays_completed", r.tier.relays_completed)
              .set("relays_failed", r.tier.relays_failed)
              .set("model_pushes", r.tier.model_pushes)
              .set("p50_s", r.p50_s)
              .set("p99_s", r.p99_s));
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNote: every inference completes in every mode — the modes differ "
      "in where the overflow finishes. Shed requests fall back to the "
      "client CPU (fat p99, offloaded count drops); escalated requests "
      "ride the WAN to the cloud and stay offloaded; stealing moves part "
      "of the backlog sideways to an idle edge before it ever sheds.\n");

  return bench::write_json_array("BENCH_tiers.json", json) ? 0 : 1;
}
