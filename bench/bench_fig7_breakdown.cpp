// Fig. 7: breakdown of the inference time. For each app and offloading
// configuration (full after-ACK, partial after-ACK), where the time goes:
// snapshot capture/restore on each side, transmission, and DNN execution.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/offload.h"

int main() {
  using namespace offload;
  bench::print_banner(
      "Fig. 7 — Breakdown of the inference time (seconds)",
      "snapshot capture/restore overheads are negligible next to DNN "
      "execution; server execution dominates in both configurations");

  struct Config {
    core::Scenario scenario;
    const char* label;
  };
  const Config configs[] = {
      {core::Scenario::kOffloadAfterAck, "full"},
      {core::Scenario::kOffloadPartial, "partial"},
  };

  util::TextTable table;
  std::vector<std::string> header = {"Component"};
  std::vector<core::InferenceBreakdown> breakdowns;
  for (const auto& model : nn::benchmark_models()) {
    for (const auto& config : configs) {
      std::fprintf(stderr, "[fig7] %s (%s)...\n", model.app_name,
                   config.label);
      core::RunResult result =
          core::run_scenario(model, config.scenario, core::ScenarioOptions{});
      breakdowns.push_back(result.breakdown);
      header.push_back(std::string(model.app_name) + " (" + config.label +
                       ")");
    }
  }
  table.header(header);

  const auto& labels = core::InferenceBreakdown::labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::vector<std::string> row = {labels[i]};
    for (const auto& b : breakdowns) {
      row.push_back(bench::fmt_s(b.values()[i]));
    }
    table.row(std::move(row));
  }
  std::vector<std::string> total_row = {"TOTAL"};
  for (const auto& b : breakdowns) total_row.push_back(bench::fmt_s(b.total()));
  table.row(std::move(total_row));

  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNote: '(C)' rows execute on the client, '(S)' rows on the "
      "server; partial configurations add client-side DNN execution for "
      "the front part of the network.\n");
  return 0;
}
