// Ablation studies for the design choices DESIGN.md calls out, plus the
// paper's forward-looking remarks made quantitative:
//   A. Differential snapshots (Section VI future work): first vs repeat
//      offload cost when the server keeps the session state.
//   B. Local-execution fallback while the model uploads (Section IV.A).
//   C. A WebGL GPU server (Section IV.A: "~80x speedup"): where does the
//      time go once server execution stops dominating?
//   D. Snapshot typed-array encoding: decimal text (paper) vs base64.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/offload.h"
#include "src/jsvm/snapshot.h"

namespace {

using namespace offload;

nn::BenchmarkModel agenet() {
  return {"AgeNet", &nn::build_agenet, 11, 227};
}

void ablation_differential() {
  std::printf("\n[A] Differential snapshots (repeat offloads, AgeNet)\n");
  edge::AppBundle bundle = core::make_benchmark_app(agenet(), false);
  core::RuntimeConfig config;
  config.client.differential_snapshots = true;
  config.click_at = core::after_ack_click_time(*bundle.network, false, 0,
                                               30e6);
  core::OffloadingRuntime runtime(config, std::move(bundle));
  core::RunResult first = runtime.run();
  runtime.client().click_at(runtime.simulation().now() +
                            sim::SimTime::seconds(5));
  runtime.simulation().run();
  const edge::ClientTimeline& second = runtime.client().timeline();

  util::TextTable table;
  table.header({"offload", "snapshot on wire", "inference (s)",
                "mode"});
  table.row({"#1", util::format_bytes(static_cast<double>(
                       first.timeline.snapshot_stats.total_bytes)),
             bench::fmt_s(first.inference_seconds), "full"});
  table.row({"#2", util::format_bytes(static_cast<double>(
                       second.snapshot_stats.total_bytes)),
             bench::fmt_s(second.inference_seconds()),
             second.used_differential ? "differential" : "full"});
  std::printf("%s", table.str().c_str());
  std::printf("  -> the repeat offload reuses the image and app state left "
              "on the server; only the re-dispatched event travels.\n");
}

void ablation_local_fallback() {
  std::printf("\n[B] Local fallback while the model uploads (AgeNet, click "
              "at t=0.05s)\n");
  util::TextTable table;
  table.header({"policy", "inference (s)", "ran on"});
  {
    core::ScenarioOptions opts;
    core::RunResult blocking =
        core::run_scenario(agenet(), core::Scenario::kOffloadBeforeAck, opts);
    table.row({"wait for upload (paper's 'before ACK')",
               bench::fmt_s(blocking.inference_seconds), "server"});
  }
  {
    edge::AppBundle bundle = core::make_benchmark_app(agenet(), false);
    core::RuntimeConfig config;
    config.client.local_fallback_before_ack = true;
    config.click_at = sim::SimTime::seconds(0.05);
    core::OffloadingRuntime runtime(config, std::move(bundle));
    core::RunResult fallback = runtime.run();
    table.row({"execute locally during upload",
               bench::fmt_s(fallback.inference_seconds), "client"});
  }
  std::printf("%s", table.str().c_str());
  std::printf("  -> matches Section IV.A: before the ACK, local execution "
              "beats queueing behind the model transfer.\n");
}

void ablation_gpu_server() {
  std::printf("\n[C] WebGL GPU server (the paper's anticipated ~80x)\n");
  util::TextTable table;
  table.header({"app", "server exec CPU (s)", "server exec GPU (s)",
                "offload total CPU (s)", "offload total GPU (s)"});
  for (const auto& model : nn::benchmark_models()) {
    std::fprintf(stderr, "[ablation C] %s...\n", model.app_name);
    auto net = model.build(model.seed);
    double cpu_exec = core::server_only_inference_seconds(
        *net, nn::DeviceProfile::edge_server());
    double gpu_exec = core::server_only_inference_seconds(
        *net, nn::DeviceProfile::edge_server_gpu());

    edge::AppBundle bundle = core::make_benchmark_app(model, false);
    core::RuntimeConfig config;
    config.click_at = core::after_ack_click_time(*bundle.network, false, 0,
                                                 30e6);
    core::OffloadingRuntime cpu_runtime(config, std::move(bundle));
    double cpu_total = cpu_runtime.run().inference_seconds;

    edge::AppBundle bundle2 = core::make_benchmark_app(model, false);
    core::RuntimeConfig gpu_config = config;
    gpu_config.server.profile = nn::DeviceProfile::edge_server_gpu();
    core::OffloadingRuntime gpu_runtime(gpu_config, std::move(bundle2));
    double gpu_total = gpu_runtime.run().inference_seconds;

    table.row({model.app_name, bench::fmt_s(cpu_exec),
               bench::fmt_s(gpu_exec), bench::fmt_s(cpu_total),
               bench::fmt_s(gpu_total)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("  -> with a GPU server, transmission becomes the bottleneck "
              "— snapshot size optimizations (diff, base64) then matter "
              "most.\n");
}

void ablation_base64() {
  std::printf("\n[D] Snapshot typed-array encoding (GoogLeNet feature at "
              "1st_conv)\n");
  jsvm::Interpreter interp;
  interp.eval_program(
      "var feature = Float32Array(802816);\n"  // 64x112x112
      "for (var i = 0; i < feature.length; i++) {\n"
      "  feature[i] = i * 0.0001 - 40.0;\n"
      "}\n");
  jsvm::SnapshotResult text_snap = jsvm::capture_snapshot(interp);
  jsvm::SnapshotOptions b64;
  b64.base64_typed_arrays = true;
  jsvm::SnapshotResult b64_snap = jsvm::capture_snapshot(interp, b64);
  util::TextTable table;
  table.header({"encoding", "snapshot bytes", "transfer @30 Mbps (s)"});
  auto row = [&](const char* name, std::uint64_t bytes) {
    table.row({name, util::format_bytes(static_cast<double>(bytes)),
               bench::fmt_s(static_cast<double>(bytes) * 8.0 / 30e6)});
  };
  row("decimal text (paper)", text_snap.stats.total_bytes);
  row("base64 (extension)", b64_snap.stats.total_bytes);
  row("raw fp32 (lower bound)", 802816 * 4);
  std::printf("%s", table.str().c_str());
}

void ablation_dynamic_partition() {
  std::printf("\n[E] Runtime partition selection vs bandwidth (AgeNet)\n");
  std::printf("    (Section III.B.2: the partition point is \"decided "
              "dynamically based on ... the runtime network status\")\n");
  auto net = nn::build_agenet(11);
  auto tiny = nn::build_tiny_cnn(1);
  const nn::Network* nets[] = {tiny.get(), net.get()};
  nn::LayerCostModel client = nn::LayerCostModel::profile_device(
      nn::DeviceProfile::embedded_client(), nets);
  nn::LayerCostModel server = nn::LayerCostModel::profile_device(
      nn::DeviceProfile::edge_server(), nets);
  nn::Partitioner partitioner(*net, client, server);

  util::TextTable table;
  table.header({"bandwidth", "chosen cut", "est. total (s)",
                "feature on wire"});
  for (double mbps : {0.05, 0.5, 2.0, 10.0, 30.0, 100.0, 1000.0}) {
    nn::PartitionCandidate best = partitioner.best(mbps * 1e6, 0.001);
    bool local = best.cut + 1 == net->size();
    table.row({util::format_fixed(mbps, 2) + " Mbps",
               local ? "(run locally)" : best.layer_name,
               util::format_fixed(best.total_s(), 3),
               local ? "-" : util::format_bytes(static_cast<double>(
                                 best.feature_bytes))});
  }
  std::printf("%s", table.str().c_str());
  std::printf("  -> bad links push the cut deeper (smaller features) and "
              "eventually fully local; fast links pull it toward the "
              "input.\n");
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablations — design choices and the paper's forward-looking claims",
      "differential snapshots shrink repeat offloads to ~nothing; local "
      "fallback beats blocking; a GPU server shifts the bottleneck to the "
      "network; base64 trims feature transfer ~2.5x; the partitioner "
      "adapts the cut to bandwidth");
  ablation_differential();
  ablation_local_fallback();
  ablation_gpu_server();
  ablation_base64();
  ablation_dynamic_partition();
  return 0;
}
