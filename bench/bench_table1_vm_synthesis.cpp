// Table I: overhead of VM-based installation versus snapshot-based
// offloading. For each app: the VM overlay size and synthesis time
// (upload at 30 Mbps + decompress/apply), and the snapshot migration time
// and non-feature snapshot size with and without pre-sending.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/offload.h"
#include "src/vmsynth/overlay.h"
#include "src/vmsynth/vmimage.h"

namespace {

struct Row {
  double synthesis_s;
  double overlay_mb;
  double mig_presend_s;
  double snap_presend_mb;
  double mig_nopresend_s;
  double snap_nopresend_mb;
};

}  // namespace

int main() {
  using namespace offload;
  bench::print_banner(
      "Table I — Overhead of VM-based installation vs snapshot-based "
      "offloading",
      "VM synthesis ~20-25 s dominated by the 65/82 MB overlay upload; "
      "snapshot migration sub-second with pre-sending and ~= model "
      "transfer time (7.8 s / 12.1 s) without");

  const double kBandwidth = 30e6;
  util::TextTable table;
  table.header({"Configuration", "Metric", "GoogleNet", "AgeNet",
                "GenderNet"});
  std::vector<Row> rows;

  for (const auto& model : nn::benchmark_models()) {
    std::fprintf(stderr, "[table1] %s: building VM overlay...\n",
                 model.app_name);
    Row row{};
    auto net = model.build(model.seed);

    // --- VM synthesis arm -------------------------------------------------
    vmsynth::VmImage base = vmsynth::make_base_image();
    std::vector<std::pair<std::string, util::Bytes>> model_blobs;
    for (auto& f : nn::model_files(*net)) {
      model_blobs.emplace_back(f.name, std::move(f.content));
    }
    vmsynth::VmImage customized = vmsynth::make_customized_image(
        base, vmsynth::SystemBundleSizes{}, model_blobs);
    vmsynth::VmOverlay overlay = vmsynth::create_overlay(base, customized);
    row.overlay_mb = static_cast<double>(overlay.payload.size()) / 1e6;
    double upload_s =
        static_cast<double>(overlay.payload.size()) * 8.0 / kBandwidth;
    row.synthesis_s =
        upload_s + vmsynth::synthesis_compute_seconds(overlay.stats);

    // --- Snapshot offloading arms ----------------------------------------
    std::fprintf(stderr, "[table1] %s: snapshot migrations...\n",
                 model.app_name);
    core::RunResult with_presend =
        core::run_scenario(model, core::Scenario::kOffloadAfterAck, {});
    row.mig_presend_s = with_presend.breakdown.snapshot_capture_client +
                        with_presend.breakdown.transmission_up +
                        with_presend.breakdown.snapshot_restore_server;
    row.snap_presend_mb =
        static_cast<double>(
            with_presend.timeline.snapshot_stats.non_feature_bytes()) /
        1e6;

    core::RunResult no_presend =
        core::run_scenario(model, core::Scenario::kOffloadBeforeAck, {});
    row.mig_nopresend_s = no_presend.breakdown.snapshot_capture_client +
                          no_presend.breakdown.transmission_up +
                          no_presend.breakdown.snapshot_restore_server;
    // Without pre-sending the model rides with the snapshot; the paper's
    // "snapshot except feature data" counts it (27 / 44 / 44 MB).
    row.snap_nopresend_mb =
        static_cast<double>(
            no_presend.timeline.snapshot_stats.non_feature_bytes() +
            no_presend.timeline.model_upload_bytes) /
        1e6;
    rows.push_back(row);
  }

  auto row_of = [&](const char* config, const char* metric, auto getter,
                    int decimals) {
    std::vector<std::string> cells = {config, metric};
    for (const auto& r : rows) {
      cells.push_back(util::format_fixed(getter(r), decimals));
    }
    table.row(std::move(cells));
  };
  row_of("VM synthesis", "Synthesis time (s)",
         [](const Row& r) { return r.synthesis_s; }, 2);
  row_of("VM synthesis", "VM overlay (MB)",
         [](const Row& r) { return r.overlay_mb; }, 0);
  row_of("Snapshot offloading (w/ pre-send)", "Migration time (s)",
         [](const Row& r) { return r.mig_presend_s; }, 2);
  row_of("Snapshot offloading (w/ pre-send)", "Snapshot excl. feature (MB)",
         [](const Row& r) { return r.snap_presend_mb; }, 3);
  row_of("Snapshot offloading (w/o pre-send)", "Migration time (s)",
         [](const Row& r) { return r.mig_nopresend_s; }, 2);
  row_of("Snapshot offloading (w/o pre-send)", "Snapshot excl. feature (MB)",
         [](const Row& r) { return r.snap_nopresend_mb; }, 0);

  std::printf("%s", table.str().c_str());
  std::printf(
      "\nPaper values: synthesis 19.31/24.29/24.31 s; overlay 65/82/82 MB; "
      "migration w/ pre-send 0.60/0.34/0.34 s; w/o 7.79/12.07/12.07 s.\n"
      "Our snapshot-excl-feature is smaller than the paper's 0.09/0.02 MB "
      "because the ML framework here is a native host binding, not ~90 KB "
      "of bundled JS (see EXPERIMENTS.md).\n");
  return 0;
}
