// Robustness under deterministic fault injection: availability and latency
// percentiles versus message-fault rate, with and without the client
// offload supervisor, plus a server-crash scenario exercising failover.
//
// Each trial is one full app run (model pre-send + one offloaded click of
// the TinyCNN app) under FaultPlanConfig::uniform(rate) with a per-trial
// seed. A trial that never completes (the simulation quiesces with the
// app unfinished) or dies on an unhandled protocol error counts against
// availability. Everything is seeded, so two invocations of this binary
// produce byte-identical BENCH_faults.json — the CI fault matrix diffs
// exactly that.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/json_writer.h"
#include "src/core/offload.h"
#include "src/obs/obs.h"
#include "src/util/stats.h"

namespace {

using namespace offload;

nn::BenchmarkModel tiny_model() {
  return {"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
}

struct TrialOutcome {
  bool completed = false;
  double inference_s = 0;
  int retries = 0;
  bool fell_back_local = false;
};

/// One app run under the given fault plan. Completion failures (stalled
/// protocol, corrupted payload killing an unsupervised client) are caught
/// and reported, not fatal — they are the phenomenon being measured.
TrialOutcome run_trial(bool supervised, const fault::FaultPlanConfig& faults,
                       bool spare, fault::CrashSpec* crash) {
  edge::AppBundle bundle = core::make_benchmark_app(tiny_model(), false);
  core::RuntimeConfig config;
  config.client.supervisor.enabled = supervised;
  config.fleet.spares = spare ? 1 : 0;
  config.click_at =
      core::after_ack_click_time(*bundle.network, false, 0, 30e6);
  fault::FaultPlanConfig plan = faults;
  if (crash) {
    fault::CrashSpec spec = *crash;
    spec.first_at = config.click_at + spec.first_at;  // relative to click
    plan.crashes.push_back(spec);
  }
  config.faults = plan;

  // Each trial gets its own metrics registry; the outcome is read back
  // from the instrumented actors' counters instead of hand-copied
  // timeline fields. Incomplete trials throw before client.inferences is
  // counted, so failed runs contribute no counter deltas.
  obs::Obs obs;
  config.obs = &obs;

  TrialOutcome out;
  try {
    core::OffloadingRuntime runtime(config, std::move(bundle));
    core::RunResult result = runtime.run();
    out.completed = obs.metrics.counter("client.inferences") == 1;
    out.inference_s = result.inference_seconds;
    out.retries = static_cast<int>(obs.metrics.counter("client.retries"));
    out.fell_back_local = obs.metrics.counter("client.local_fallbacks") > 0;
  } catch (const std::exception&) {
    // Stalled offload or an unhandled corrupt payload: the inference was
    // lost. This is what the supervisor's deadlines/retries prevent.
  }
  return out;
}

struct SweepResult {
  int trials = 0;
  int completed = 0;
  double availability = 0;
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
  double mean_retries = 0;
  int local_fallbacks = 0;
};

SweepResult run_sweep(bool supervised, double rate, int trials,
                      bool spare, fault::CrashSpec* crash) {
  SweepResult out;
  out.trials = trials;
  util::Samples latency;
  double retries = 0;
  for (int i = 0; i < trials; ++i) {
    fault::FaultPlanConfig faults =
        fault::FaultPlanConfig::uniform(rate, 1000 + i);
    TrialOutcome t = run_trial(supervised, faults, spare, crash);
    if (!t.completed) continue;
    ++out.completed;
    latency.add(t.inference_s);
    retries += t.retries;
    if (t.fell_back_local) ++out.local_fallbacks;
  }
  out.availability = static_cast<double>(out.completed) / trials;
  if (out.completed > 0) {
    out.p50_s = latency.percentile(50.0);
    out.p95_s = latency.percentile(95.0);
    out.p99_s = latency.percentile(99.0);
    out.mean_retries = retries / out.completed;
  }
  return out;
}

std::string fmt2(double v) { return util::format_fixed(v, 2); }
std::string fmt3(double v) { return util::format_fixed(v, 3); }

}  // namespace

int main() {
  constexpr int kTrials = 25;
  std::vector<bench::JsonObject> json;

  bench::print_banner(
      "Fault sweep — availability & latency vs message-fault rate",
      "uniform drop/duplicate/corrupt/delay faults on both directions; "
      "the supervisor's deadlines, retries and hedging keep availability "
      "at 1.0 where the bare protocol starts losing inferences");

  util::TextTable table;
  table.header({"fault rate", "supervisor", "avail", "p50 s", "p95 s",
                "p99 s", "mean retries", "local fallbacks"});
  for (double rate : {0.0, 0.02, 0.05, 0.10}) {
    for (bool supervised : {false, true}) {
      SweepResult r = run_sweep(supervised, rate, kTrials,
                                /*spare=*/false, /*crash=*/nullptr);
      table.row({fmt2(rate), supervised ? "on" : "off",
                 fmt3(r.availability), fmt3(r.p50_s), fmt3(r.p95_s),
                 fmt3(r.p99_s), fmt2(r.mean_retries),
                 std::to_string(r.local_fallbacks)});
      json.push_back(bench::JsonObject()
                         .set("experiment", "fault_sweep")
                         .set("fault_rate", rate)
                         .set("supervisor", supervised ? 1 : 0)
                         .set("trials", r.trials)
                         .set("completed", r.completed)
                         .set("availability", r.availability)
                         .set("p50_s", r.p50_s)
                         .set("p95_s", r.p95_s)
                         .set("p99_s", r.p99_s)
                         .set("mean_retries", r.mean_retries)
                         .set("local_fallbacks", r.local_fallbacks));
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nNote: at rate 0 the two rows must be identical — the supervisor "
      "is pure overhead-free insurance on a healthy path. Unsupervised "
      "losses come from corrupted or dropped result snapshots the bare "
      "protocol cannot recover.\n\n");

  bench::print_banner(
      "Crash scenario — primary server dies right after the click",
      "without supervision the snapshot lands on a dead host and the app "
      "hangs; with it, deadlines fire and the inference completes via "
      "retry, failover to a spare server, or hedged local execution");

  util::TextTable crash_table;
  crash_table.header({"config", "avail", "p50 s", "p95 s"});
  struct CrashVariant {
    const char* label;
    bool supervised;
    bool spare;
  };
  const CrashVariant variants[] = {
      {"unsupervised", false, false},
      {"supervised", true, false},
      {"supervised+spare", true, true},
  };
  for (const CrashVariant& v : variants) {
    fault::CrashSpec crash;
    crash.first_at = sim::SimTime::millis(1);  // relative to the click
    crash.downtime = sim::SimTime::seconds(30);
    SweepResult r =
        run_sweep(v.supervised, 0.0, kTrials, v.spare, &crash);
    crash_table.row(
        {v.label, fmt3(r.availability), fmt3(r.p50_s), fmt3(r.p95_s)});
    json.push_back(bench::JsonObject()
                       .set("experiment", "crash")
                       .set("config", v.label)
                       .set("trials", r.trials)
                       .set("completed", r.completed)
                       .set("availability", r.availability)
                       .set("p50_s", r.p50_s)
                       .set("p95_s", r.p95_s));
  }
  std::printf("%s", crash_table.str().c_str());

  return bench::write_json_array("BENCH_faults.json", json) ? 0 : 1;
}
