// Supporting experiment for Section III.B.1: model pre-sending time across
// network bandwidths ("it will take about 12 seconds for transmitting the
// model even under the good Wi-Fi network whose bandwidth is 30 Mbps"),
// plus the rear-only upload used by the privacy scheme.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/offload.h"
#include "src/nn/model_io.h"

int main() {
  using namespace offload;
  bench::print_banner(
      "Pre-sending — model upload time vs bandwidth (seconds to ACK)",
      "~12 s for the 44 MB AgeNet/GenderNet model at 30 Mbps; inversely "
      "proportional to bandwidth. Rear-only uploads (privacy mode) are "
      "only marginally smaller at the shallow 1st_pool cut — withholding "
      "the front weights is about privacy, not bytes");

  const double bandwidths[] = {5e6, 10e6, 20e6, 30e6, 50e6, 100e6};

  for (const auto& model : nn::benchmark_models()) {
    auto net = model.build(model.seed);
    std::size_t pool_cut = core::first_pool_cut(*net);
    double full_mb =
        static_cast<double>(nn::total_size(nn::model_files(*net))) / 1e6;
    double rear_mb = static_cast<double>(nn::total_size(
                         nn::model_files_rear_only(*net, pool_cut))) /
                     1e6;

    util::TextTable table;
    table.header({"bandwidth", "full model upload (s)",
                  "rear-only upload (s)"});
    for (double bw : bandwidths) {
      std::fprintf(stderr, "[presend] %s @ %.0f Mbps...\n", model.app_name,
                   bw / 1e6);
      core::ScenarioOptions opts;
      opts.bandwidth_bps = bw;
      core::RunResult full =
          core::run_scenario(model, core::Scenario::kOffloadAfterAck, opts);
      core::RunResult rear =
          core::run_scenario(model, core::Scenario::kOffloadPartial, opts);
      table.row({util::format_fixed(bw / 1e6, 0) + " Mbps",
                 bench::fmt_s(full.model_upload_seconds),
                 bench::fmt_s(rear.model_upload_seconds)});
    }
    std::printf("\n--- %s (full %.1f MB, rear-only %.1f MB) ---\n%s",
                model.app_name, full_mb, rear_mb, table.str().c_str());
  }
  return 0;
}
