// Edge-server handoff: a mobile client offloads to edge server A, then
// moves into a different service area and offloads the *next* inference to
// edge server B. Because the snapshot is self-contained, nothing about the
// session has to migrate from A to B — the property the paper's
// introduction highlights over VM-based customization. Composed directly
// from the library's building blocks (BrowserHost, EdgeServer, Channel).
//
//   ./build/examples/edge_handoff
#include <cstdio>

#include "src/core/offload.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/edge/protocol.h"

namespace {

using namespace offload;

/// Minimal hand-rolled client controller good for two sequential offloads
/// against different servers.
class RoamingClient {
 public:
  RoamingClient(sim::Simulation& sim, edge::AppBundle bundle)
      : sim_(sim), bundle_(std::move(bundle)) {
    store_ = std::make_shared<edge::ModelStore>();
    store_->store_files(nn::model_files(*bundle_.network));
    browser_ = std::make_unique<edge::BrowserHost>(
        nn::DeviceProfile::embedded_client(), store_);
    browser_->add_image("input", bundle_.input_image);
    browser_->interp().eval_program(bundle_.source, bundle_.name);
    browser_->interp().run_events();
    browser_->consume_compute_seconds();
  }

  /// Pre-send the model to whatever server `endpoint` reaches.
  void presend(net::Endpoint& endpoint) {
    edge::ModelFilesPayload payload;
    payload.files = nn::model_files(*bundle_.network);
    net::Message msg;
    msg.type = net::MessageType::kModelFiles;
    msg.name = bundle_.name;
    msg.payload = payload.encode();
    endpoint.send(std::move(msg));
  }

  /// Click the button and migrate the pending handler to `endpoint`.
  /// `done` fires when the result snapshot has been adopted.
  void offload_inference(net::Endpoint& endpoint,
                         std::function<void(std::string)> done) {
    done_ = std::move(done);
    endpoint.set_handler([this](const net::Message& m) { on_reply(m); });
    jsvm::Interpreter& interp = browser_->interp();
    jsvm::DomNodePtr btn =
        interp.document().get_element_by_id(bundle_.click_target);
    interp.enqueue_event(btn, "click", jsvm::Undefined{});
    interp.offload_hook = [](const jsvm::PendingEvent& ev) {
      return ev.type == "click";
    };
    interp.run_events();
    interp.take_pending_offload();
    jsvm::SnapshotResult snap = jsvm::capture_snapshot(interp);
    edge::SnapshotPayload payload;
    payload.program = std::move(snap.program);
    net::Message msg;
    msg.type = net::MessageType::kSnapshot;
    msg.name = bundle_.name;
    msg.payload = payload.encode();
    std::printf("  [%.3fs] client: migrating %s of execution state\n",
                sim_.now().to_seconds(),
                util::format_bytes(static_cast<double>(
                    snap.stats.total_bytes)).c_str());
    endpoint.send(std::move(msg));
  }

 private:
  void on_reply(const net::Message& m) {
    if (m.type != net::MessageType::kResultSnapshot) return;
    edge::SnapshotPayload payload =
        edge::SnapshotPayload::decode(std::span(m.payload));
    browser_->reset_realm();
    jsvm::restore_snapshot(browser_->interp(), payload.program);
    browser_->interp().run_events();
    jsvm::DomNodePtr result =
        browser_->interp().document().get_element_by_id("result");
    std::printf("  [%.3fs] client: adopted result snapshot\n",
                sim_.now().to_seconds());
    if (done_) done_(result ? result->text : "");
  }

  sim::Simulation& sim_;
  edge::AppBundle bundle_;
  std::shared_ptr<edge::ModelStore> store_;
  std::unique_ptr<edge::BrowserHost> browser_;
  std::function<void(std::string)> done_;
};

}  // namespace

int main() {
  sim::Simulation sim;

  // Two independent edge servers in different service areas.
  net::ChannelConfig wifi;
  wifi.a_to_b.bandwidth_bps = 30e6;
  wifi.b_to_a.bandwidth_bps = 30e6;
  auto link_a = net::Channel::make(sim, wifi, "client", "edge-A");
  auto link_b = net::Channel::make(sim, wifi, "client", "edge-B");
  edge::EdgeServer server_a(sim, link_a->b());
  edge::EdgeServer server_b(sim, link_b->b());

  nn::BenchmarkModel tiny{"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
  RoamingClient client(sim, core::make_benchmark_app(tiny, false));

  std::printf("Phase 1: attached to edge server A\n");
  client.presend(link_a->a());
  std::string first_result;
  sim.schedule(sim::SimTime::seconds(1.0), [&] {
    client.offload_inference(link_a->a(), [&](std::string text) {
      first_result = std::move(text);
      std::printf("  result via A: \"%s\"\n", first_result.c_str());
    });
  });
  sim.run();

  std::printf("\nPhase 2: client moved; now attached to edge server B\n");
  std::printf("  (no session state exists on B — the snapshot needs none)\n");
  client.presend(link_b->a());
  std::string second_result;
  sim.schedule(sim::SimTime::seconds(1.0), [&] {
    client.offload_inference(link_b->a(), [&](std::string text) {
      second_result = std::move(text);
      std::printf("  result via B: \"%s\"\n", second_result.c_str());
    });
  });
  sim.run();

  std::printf("\nServer A executed %d snapshot(s), server B executed %d.\n",
              server_a.stats().snapshots_executed,
              server_b.stats().snapshots_executed);
  std::printf("Results agree across servers: %s\n",
              first_result == second_result ? "yes" : "NO (bug!)");
  return first_result == second_result ? 0 : 1;
}
