// A fleet of edge servers behind a deterministic balancer, with
// content-addressed model pre-send. Three clients of the same app share
// two servers: the first upload per server is full-sized, every later
// pre-send is a digest offer the server answers from its blob cache. The
// balancer (power-of-two-choices here; "hash" and "least_outstanding" are
// one config string away) hands each inference an ordered candidate list —
// index 0 serves it, the rest are the failover order.
//
//   ./build/examples/fleet_offload
//
// Run it twice: every number is identical. Routing draws come from a
// seeded PCG32 stream and the whole fleet lives in the simulation.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/offload.h"
#include "src/util/strings.h"

int main() {
  using namespace offload;

  nn::BenchmarkModel tiny{"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};

  sim::Simulation sim;
  obs::Obs obs;

  fleet::FleetConfig config;
  config.size = 2;
  config.balancer.policy = "p2c";
  config.balancer.seed = 9;
  config.dedup = true;  // digests first; bodies only on a cache miss
  config.channel = core::RuntimeConfig::default_channel();
  config.obs = &obs;
  fleet::EdgeFleet fleet(sim, config);

  std::vector<std::unique_ptr<edge::ClientDevice>> clients;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "client" + std::to_string(i);
    fleet::EdgeFleet::ClientLink link = fleet.connect_client(name);
    edge::ClientConfig client_config;
    client_config.obs = &obs;
    fleet.configure_client(client_config, link, name);
    clients.push_back(std::make_unique<edge::ClientDevice>(
        sim, *link.endpoints[0], client_config,
        core::make_benchmark_app(tiny, /*partial=*/false)));
    for (std::size_t k = 1; k < link.endpoints.size(); ++k) {
      clients.back()->attach_server(*link.endpoints[k]);
    }
  }

  // Launch 300 ms apart (so pre-sends hit a warm cache), click together.
  for (std::size_t i = 0; i < clients.size(); ++i) {
    edge::ClientDevice* client = clients[i].get();
    sim.schedule(sim::SimTime::millis(300 * i), [client] { client->start(); });
    client->click_at(sim::SimTime::seconds(5));
  }
  sim.run();

  for (std::size_t i = 0; i < clients.size(); ++i) {
    const edge::ClientTimeline& t = clients[i]->timeline();
    // model_upload_bytes covers the model transfer for *this* inference's
    // server: digest-sized when its blob cache was warm, full otherwise.
    std::printf("client%zu: %s on server %d (%llu model bytes sent to it)\n",
                i, util::format_seconds(t.inference_seconds()).c_str(),
                t.server_index,
                static_cast<unsigned long long>(t.model_upload_bytes));
  }
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    const edge::EdgeServer::Stats& s = fleet.server(k).stats();
    std::printf(
        "%s: executed %d, offers %d (hit %d / miss %d files), "
        "saved %llu upload bytes\n",
        fleet.server_name(k).c_str(), s.snapshots_executed, s.model_offers,
        s.dedup_hit_files, s.dedup_miss_files,
        static_cast<unsigned long long>(s.dedup_bytes_saved));
  }
  std::printf("fleet-wide upload bytes saved by dedup: %llu\n",
              static_cast<unsigned long long>(fleet.dedup_bytes_saved()));
  return 0;
}
