// On-demand installation (Section III.B.3): the client meets an edge
// server that does NOT run the offloading system. The first upload is
// refused; the client ships a VM overlay (offloading system + model),
// the server synthesizes the VM, and the held-back snapshot then executes.
//
//   ./build/examples/ondemand_install [--paper-scale]
//
// Default uses a small synthetic system bundle; --paper-scale builds the
// full 100 MB bundle of Table I (takes a few seconds to compress).
#include <cstdio>
#include <cstring>

#include "src/core/offload.h"
#include "src/util/strings.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace offload;
  const bool paper_scale = argc > 1 && std::strcmp(argv[1], "--paper-scale") == 0;

  nn::BenchmarkModel tiny{"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
  edge::AppBundle app = core::make_benchmark_app(tiny, false);

  core::RuntimeConfig config;
  config.server.offloading_system_installed = false;  // bare edge server
  config.client.install_on_demand = true;
  if (!paper_scale) {
    config.client.overlay_sizes.browser_bytes = 2'000'000;
    config.client.overlay_sizes.libraries_bytes = 2'000'000;
    config.client.overlay_sizes.server_program_bytes = 100'000;
  }
  config.click_at = sim::SimTime::seconds(0.05);

  core::OffloadingRuntime runtime(config, std::move(app));
  std::printf("Edge server starts WITHOUT the offloading system.\n");
  std::printf("Client will install it on demand via VM synthesis%s...\n\n",
              paper_scale ? " (paper-scale ~100 MB bundle)" : "");

  core::RunResult result = runtime.run();

  const auto& server = runtime.server();
  std::printf("server installed:      %s\n",
              server.installed() ? "yes (via VM synthesis)" : "no");
  std::printf("overlays synthesized:  %d\n",
              server.stats().overlays_installed);
  std::printf("uploads refused first: %d\n", server.stats().refused);
  std::printf("synthesis compute:     %s\n",
              util::format_seconds(server.stats().vm_synthesis_compute_s)
                  .c_str());
  std::printf("model available on server: %s\n",
              server.model_store().can_instantiate("tinycnn") ? "yes (came "
              "inside the overlay)" : "no");
  std::printf("\ninference completed:   \"%s\" in %s (including install)\n",
              result.result_text.c_str(),
              util::format_seconds(result.inference_seconds).c_str());
  std::printf(
      "\nOnce installed, later offloads skip all of this: the snapshot "
      "alone migrates in well under a second (see bench_table1).\n");
  return 0;
}
