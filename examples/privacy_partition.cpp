// Privacy-preserving partial inference (Section III.B.2), end to end:
//  1. the Neurosurgeon-style partitioner scores every offloading point
//     under the current bandwidth and picks the best denaturing one,
//  2. the app runs with that partition (front on the client, rear on the
//     server; only the rear weights were pre-sent),
//  3. a curious server tries to invert the transferred feature data back
//     into the input image — with and without the front weights.
//
//   ./build/examples/privacy_partition [bandwidth_mbps]
#include <cstdio>
#include <cstdlib>

#include "src/core/offload.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/cost_model.h"
#include "src/nn/pool.h"
#include "src/privacy/inversion.h"
#include "src/privacy/metrics.h"

namespace {

using namespace offload;

std::unique_ptr<nn::Network> make_probe_front(std::uint64_t seed) {
  auto net = std::make_unique<nn::Network>("probe");
  net->add(std::make_unique<nn::InputLayer>("data", nn::Shape{3, 16, 16}));
  net->add(std::make_unique<nn::ConvLayer>(
      "conv1", nn::ConvConfig{.in_channels = 3, .out_channels = 8,
                              .kernel = 3, .stride = 1, .pad = 1}));
  net->init_params(seed);
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  double mbps = argc > 1 ? std::atof(argv[1]) : 30.0;
  if (mbps <= 0) mbps = 30.0;

  // ---- 1. Partition-point selection ---------------------------------------
  nn::BenchmarkModel model{"AgeNet", &nn::build_agenet, 11, 227};
  auto net = model.build(model.seed);
  auto tiny = nn::build_tiny_cnn(1);
  const nn::Network* profile_nets[] = {tiny.get(), net.get()};
  nn::LayerCostModel client_cost = nn::LayerCostModel::profile_device(
      nn::DeviceProfile::embedded_client(), profile_nets);
  nn::LayerCostModel server_cost = nn::LayerCostModel::profile_device(
      nn::DeviceProfile::edge_server(), profile_nets);

  nn::Partitioner partitioner(*net, client_cost, server_cost);
  std::printf("Partition candidates for %s at %.0f Mbps:\n", model.app_name,
              mbps);
  util::TextTable table;
  table.header({"cut layer", "kind", "feature", "est. total (s)",
                "denatures input"});
  for (const auto& c : partitioner.evaluate(mbps * 1e6, 0.001)) {
    table.row({c.layer_name, nn::layer_kind_name(c.kind),
               util::format_bytes(static_cast<double>(c.feature_bytes)),
               util::format_fixed(c.total_s(), 3),
               c.denatures ? "yes" : "no"});
  }
  std::printf("%s", table.str().c_str());

  nn::PartitionCandidate best = partitioner.best(mbps * 1e6, 0.001);
  std::printf("\nChosen offloading point: %s (cut %zu)\n",
              best.layer_name.c_str(), best.cut);

  // ---- 2. Run the app with that partition ---------------------------------
  core::ScenarioOptions opts;
  opts.bandwidth_bps = mbps * 1e6;
  opts.partial_cut = best.cut;
  std::fprintf(stderr, "running partial inference end to end...\n");
  core::RunResult run =
      core::run_scenario(model, core::Scenario::kOffloadPartial, opts);
  std::printf("\nEnd-to-end partial inference: %s -> \"%s\"\n",
              util::format_seconds(run.inference_seconds).c_str(),
              run.result_text.c_str());
  std::printf("Feature snapshot on the wire: %s (image never leaves the "
              "client)\n",
              util::format_bytes(static_cast<double>(
                  run.timeline.snapshot_stats.typed_array_bytes)).c_str());

  // ---- 3. What can a curious server learn? --------------------------------
  std::printf("\nInversion attack on the transferred features (small probe "
              "front for tractability):\n");
  auto front = make_probe_front(31);
  nn::Tensor secret(nn::Shape{3, 16, 16});
  for (std::int64_t i = 0; i < secret.elements(); ++i) {
    secret[i] = static_cast<float>((i * 7) % 256) / 255.0f;
  }
  std::size_t cut = front->index_of("conv1");
  nn::Tensor feature = front->forward_front(secret, cut);

  privacy::InversionResult leaked =
      privacy::invert_features(*front, cut, feature);
  auto surrogate = make_probe_front(999);
  privacy::InversionResult defended =
      privacy::invert_features(*surrogate, cut, feature);

  std::printf("  attacker HAS front weights:    correlation %.3f, PSNR %.1f dB"
              "  -> input compromised\n",
              privacy::correlation(leaked.reconstruction, secret),
              privacy::psnr_db(leaked.reconstruction, secret));
  std::printf("  weights withheld (pre-send rear only): correlation %.3f, "
              "PSNR %.1f dB  -> input protected\n",
              privacy::correlation(defended.reconstruction, secret),
              privacy::psnr_db(defended.reconstruction, secret));
  return 0;
}
