// Multi-tenant serving: N tenants share one edge server's compute through
// the serving scheduler, submitting partial-inference jobs for *different*
// models (GoogLeNet and AgeNet, the paper's two largest benchmark apps).
// The scheduler fuses compatible jobs — same model, same cut — into
// batched rear-range forwards, so each model's traffic batches with
// itself while the two streams interleave on the replica lanes.
//
//   ./build/examples/multi_tenant_serving [tenants] [requests-per-tenant]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/models.h"
#include "src/serve/scheduler.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace offload;
  int tenants = argc > 1 ? std::atoi(argv[1]) : 6;
  if (tenants < 1 || tenants > 32) tenants = 6;
  int per_tenant = argc > 2 ? std::atoi(argv[2]) : 8;
  if (per_tenant < 1 || per_tenant > 100) per_tenant = 8;

  sim::Simulation sim;

  // Two models registered with one scheduler. The fusion key is
  // (model, cut): GoogLeNet jobs never batch with AgeNet jobs.
  std::shared_ptr<const nn::Network> googlenet = nn::build_googlenet(7);
  std::shared_ptr<const nn::Network> agenet = nn::build_agenet(11);
  struct Tenant {
    std::shared_ptr<const nn::Network> net;
    std::size_t cut;
    double rate_rps;
  };
  const std::size_t google_cut = googlenet->index_of("pool4");
  const std::size_t age_cut = agenet->index_of("pool5");

  serve::SchedulerConfig cfg;
  cfg.profile = nn::DeviceProfile::edge_server();
  cfg.replicas = 2;
  cfg.max_batch = 4;
  cfg.max_batch_wait = sim::SimTime::millis(15);
  cfg.max_queue = 64;
  cfg.policy = "edf";
  serve::Scheduler sched(sim, cfg);
  sched.register_model(googlenet);
  sched.register_model(agenet);

  std::printf("multi-tenant serving: %d tenants x %d requests, "
              "models googlenet+agenet, %d replicas, batch<=%d (%s)\n\n",
              tenants, per_tenant, cfg.replicas,
              static_cast<int>(cfg.max_batch), cfg.policy.c_str());

  // Odd tenants run the GoogLeNet app, even ones AgeNet; each submits a
  // Poisson stream of "front half done on the client, finish the rear"
  // jobs, with a client-side latency budget as the EDF deadline.
  util::Pcg32 rng(2026, 5);
  struct PerModel {
    util::Samples latency;
    util::Samples batch_sizes;
    int shed = 0;
  };
  PerModel stats_google, stats_age;
  std::vector<nn::Tensor> google_features, age_features;
  for (int i = 0; i < 3; ++i) {
    google_features.push_back(nn::Tensor::random_uniform(
        googlenet->analyze().shapes[google_cut], rng, -1.0f, 1.0f));
    age_features.push_back(nn::Tensor::random_uniform(
        agenet->analyze().shapes[age_cut], rng, -1.0f, 1.0f));
  }

  for (int tenant = 0; tenant < tenants; ++tenant) {
    const bool uses_google = (tenant % 2) == 1;
    const Tenant t{uses_google ? googlenet : agenet,
                   uses_google ? google_cut : age_cut,
                   /*rate_rps=*/40.0};
    PerModel& model_stats = uses_google ? stats_google : stats_age;
    const std::vector<nn::Tensor>& features =
        uses_google ? google_features : age_features;
    double at_s = 0;
    for (int i = 0; i < per_tenant; ++i) {
      at_s += -std::log(1.0 - rng.canonical()) / t.rate_rps;
      const sim::SimTime at = sim::SimTime::seconds(at_s);
      const sim::SimTime deadline =
          at + sim::SimTime::seconds(rng.uniform(0.05, 0.2));
      const nn::Tensor& feature =
          features[static_cast<std::size_t>(i) % features.size()];
      sim.schedule_at(at, [&sched, &model_stats, t, feature, deadline] {
        serve::SubmitResult r = sched.submit_infer(
            t.net->name(), t.cut, feature,
            [&model_stats](nn::Tensor, const serve::RequestTiming& timing) {
              model_stats.latency.add(timing.total_s());
              model_stats.batch_sizes.add(timing.batch_size);
            },
            deadline);
        if (!r.admitted) ++model_stats.shed;
      });
    }
  }
  sim.run();

  util::TextTable table;
  table.header({"model", "completed", "p50 ms", "p95 ms", "mean batch",
                "shed"});
  for (const auto& [name, m] :
       {std::pair<const char*, PerModel&>{"googlenet", stats_google},
        std::pair<const char*, PerModel&>{"agenet", stats_age}}) {
    table.row({name, std::to_string(m.latency.count()),
               util::format_fixed(m.latency.percentile(50.0) * 1e3, 2),
               util::format_fixed(m.latency.percentile(95.0) * 1e3, 2),
               util::format_fixed(m.batch_sizes.mean(), 2),
               std::to_string(m.shed)});
  }
  std::printf("%s", table.str().c_str());

  const serve::Scheduler::Stats& s = sched.stats();
  std::printf(
      "\nscheduler: %llu submitted, %llu launches, %llu jobs rode a fused "
      "batch (largest %d), peak queue %zu\n",
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.launches),
      static_cast<unsigned long long>(s.fused_jobs), s.largest_batch,
      s.peak_queue_depth);
  std::printf(
      "\nNote: fusion is keyed by (model, cut) — each model's stream "
      "batches only with itself. EDF orders the shared queue by the "
      "tenants' latency budgets.\n");
  return 0;
}
