// Continuous inference: an IoT-style app (the paper's intro motivation)
// that classifies a stream of frames, offloading each one. Demonstrates
// the differential-snapshot extension end to end: after the first offload
// installs the app state on the edge server, every further frame ships as
// a tiny diff (new frame pixels + the event) instead of a full snapshot.
//
//   ./build/examples/continuous_inference [frames] [--no-diff]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/offload.h"
#include "src/util/strings.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace offload;
  int frames = argc > 1 ? std::atoi(argv[1]) : 5;
  if (frames < 1 || frames > 50) frames = 5;
  bool use_diff = !(argc > 2 && std::strcmp(argv[2], "--no-diff") == 0);

  // A camera app: each click grabs the next frame into the canvas and
  // classifies it. Frames come from the host's image registry.
  nn::BenchmarkModel tiny{"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
  edge::AppBundle app = core::make_benchmark_app(tiny, /*partial=*/false);
  app.source =
      "var model = loadModel(\"tinycnn\");\n"
      "var canvas = document.createElement('canvas');\n"
      "canvas.id = 'canvas';\n"
      "document.body.appendChild(canvas);\n"
      "var btn = document.createElement('button');\n"
      "btn.id = 'btn';\n"
      "document.body.appendChild(btn);\n"
      "var result = document.createElement('div');\n"
      "result.id = 'result';\n"
      "document.body.appendChild(result);\n"
      "var frame = 0;\n"
      "// The click handler grabs the next frame ON THE CLIENT (the edge\n"
      "// server has no camera), then raises 'classify' — the offload\n"
      "// point — so the pixels ride the snapshot, Fig. 5 style.\n"
      "btn.addEventListener('click', function() {\n"
      "  canvas.setImageData(loadImage('frame' + frame));\n"
      "  frame = frame + 1;\n"
      "  btn.dispatchEvent('classify');\n"
      "});\n"
      "btn.addEventListener('classify', function() {\n"
      "  var scores = model.inference(canvas.getImageData());\n"
      "  var best = 0;\n"
      "  for (var i = 1; i < scores.length; i++) {\n"
      "    if (scores[i] > scores[best]) { best = i; }\n"
      "  }\n"
      "  result.textContent = 'frame ' + (frame - 1) + ': label ' + best;\n"
      "});\n";

  core::RuntimeConfig config;
  config.client.differential_snapshots = use_diff;
  config.server.keep_sessions = use_diff;
  config.client.offload_event = "classify";
  config.click_at = core::after_ack_click_time(*app.network, false, 0, 30e6);

  core::OffloadingRuntime runtime(config, std::move(app));
  for (int f = 0; f < frames; ++f) {
    runtime.client().browser().add_image(
        "frame" + std::to_string(f),
        core::make_input_image(32, 1000 + static_cast<std::uint64_t>(f)));
  }

  std::printf("Streaming %d frames through the edge server (%s)...\n\n",
              frames, use_diff ? "differential snapshots"
                               : "full snapshot every frame");
  util::TextTable table;
  table.header({"frame", "snapshot on wire", "inference (s)", "mode",
                "result"});

  core::RunResult first = runtime.run();
  auto add_row = [&](int f, const edge::ClientTimeline& t,
                     const std::string& text) {
    table.row({std::to_string(f),
               util::format_bytes(static_cast<double>(
                   t.snapshot_stats.total_bytes)),
               util::format_fixed(t.inference_seconds(), 3),
               t.used_differential ? "diff" : "full", text});
  };
  add_row(0, first.timeline, first.result_text);

  for (int f = 1; f < frames; ++f) {
    runtime.client().click_at(runtime.simulation().now() +
                              sim::SimTime::seconds(2));
    runtime.simulation().run();
    add_row(f, runtime.client().timeline(), runtime.client().result_text());
  }
  std::printf("%s", table.str().c_str());

  const auto& stats = runtime.server().stats();
  std::printf("\nServer: %d snapshots executed, %d applied as diffs.\n",
              stats.snapshots_executed, stats.diff_snapshots_applied);
  if (use_diff) {
    std::printf(
        "Each frame after the first ships only the new pixels and the "
        "re-dispatched event — the app code, model reference, and DOM live "
        "on from the previous offload (the paper's Section VI vision).\n");
  }
  return 0;
}
