// Image classification at the edge: the paper's benchmark scenario on a
// real model. Compares the five Fig. 6 configurations for one app.
//
//   ./build/examples/image_classification [googlenet|agenet|gendernet]
//       [bandwidth_mbps]
//
// Default: agenet at 30 Mbps (GoogLeNet takes a few seconds per run).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/offload.h"
#include "src/util/strings.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace offload;

  std::string which = argc > 1 ? argv[1] : "agenet";
  double mbps = argc > 2 ? std::atof(argv[2]) : 30.0;
  if (mbps <= 0) {
    std::fprintf(stderr, "bad bandwidth '%s'\n", argv[2]);
    return 1;
  }

  nn::BenchmarkModel model{"", nullptr, 0, 0};
  for (const auto& m : nn::benchmark_models()) {
    std::string name = util::to_lower(m.app_name);
    if (name == util::to_lower(which)) model = m;
  }
  if (!model.build) {
    std::fprintf(stderr,
                 "unknown model '%s' (try googlenet, agenet, gendernet)\n",
                 which.c_str());
    return 1;
  }

  std::printf("App: %s image recognition, link %.0f Mbps\n\n", model.app_name,
              mbps);
  core::ScenarioOptions opts;
  opts.bandwidth_bps = mbps * 1e6;

  const core::Scenario scenarios[] = {
      core::Scenario::kClientOnly, core::Scenario::kServerOnly,
      core::Scenario::kOffloadBeforeAck, core::Scenario::kOffloadAfterAck,
      core::Scenario::kOffloadPartial};

  util::TextTable table;
  table.header({"configuration", "inference time", "result"});
  for (core::Scenario s : scenarios) {
    std::fprintf(stderr, "running %s...\n", core::scenario_name(s));
    core::RunResult r = core::run_scenario(model, s, opts);
    table.row({core::scenario_name(s),
               util::format_seconds(r.inference_seconds),
               r.result_text});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nAll offloaded configurations display the exact same label the "
      "local run computes — the snapshot migrated the execution state "
      "losslessly.\n");
  return 0;
}
