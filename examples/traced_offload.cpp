// Traced offload: run one faulted, supervised inference with an external
// observability sink, print the span tree and the metrics dump, and write
// a Chrome trace you can open in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
//   ./build/examples/traced_offload
//
// The same exports are available from any runtime/bench binary via the
// environment knobs (no code changes):
//   OFFLOAD_TRACE=chrome OFFLOAD_TRACE_PATH=trace.json ./build/examples/quickstart
//   OFFLOAD_TRACE=jsonl  OFFLOAD_METRICS=- ./build/bench/bench_fig6_exec_time
#include <cstdio>
#include <string>

#include "src/core/offload.h"
#include "src/obs/export.h"
#include "src/obs/obs.h"
#include "src/util/strings.h"

int main() {
  using namespace offload;

  nn::BenchmarkModel tiny{"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
  edge::AppBundle app = core::make_benchmark_app(tiny, /*partial=*/false);

  // A faulted, supervised run makes for an interesting trace: retries,
  // backoff spans, a crash marker, failover to the spare server.
  core::RuntimeConfig config;
  config.client.supervisor.enabled = true;
  config.fleet.spares = 1;
  config.click_at = core::after_ack_click_time(*app.network, false, 0, 30e6);
  fault::FaultPlanConfig faults = fault::FaultPlanConfig::uniform(0.08, 23);
  fault::CrashSpec crash;
  crash.first_at = config.click_at + sim::SimTime::millis(2);
  crash.downtime = sim::SimTime::seconds(3);
  faults.crashes.push_back(crash);
  config.faults = faults;

  // Hand the runtime an external sink to keep the spans after the run.
  obs::Obs obs;
  config.obs = &obs;

  core::OffloadingRuntime runtime(config, std::move(app));
  core::RunResult result = runtime.run();

  std::printf("inference:  %s  (trace id %llu, %zu spans recorded)\n\n",
              util::format_seconds(result.inference_seconds).c_str(),
              static_cast<unsigned long long>(result.trace_id),
              obs.trace.size());

  // The span tree of the inference request, indented by parent depth.
  std::printf("span tree (request trace):\n");
  for (const obs::Span& s : obs.trace.spans()) {
    if (s.trace != result.trace_id) continue;
    int depth = 0;
    for (const obs::Span* p = obs.trace.find(s.parent); p != nullptr;
         p = obs.trace.find(p->parent)) {
      ++depth;
    }
    std::printf("  %*s%-18s %-24s %-14s %s\n", depth * 2, "",
                obs::span_kind_name(s.kind), s.name.c_str(),
                s.resource.c_str(),
                util::format_seconds(s.dur_s).c_str());
  }

  std::printf("\nmetrics:\n%s", obs.metrics.dump_text().c_str());

  const std::string path = "traced_offload.chrome.json";
  if (obs::write_file(path, obs::to_chrome_trace(obs.trace))) {
    std::printf("\nwrote %s — open it at ui.perfetto.dev\n", path.c_str());
  }
  return 0;
}
