// Offloading over an unreliable edge: the link drops, duplicates, delays
// and corrupts messages, and the primary server crashes right after the
// click — yet the inference completes, because the client runs an offload
// supervisor (per-phase deadlines, retries with backoff, a hedged local
// run, a circuit breaker, and failover to a spare server).
//
//   ./build/examples/unreliable_edge
//
// Run it twice: every number is identical. Faults come from a seeded plan
// (src/fault), so a faulted run is exactly as reproducible as a clean one.
#include <cstdio>

#include "src/core/offload.h"
#include "src/util/strings.h"

int main() {
  using namespace offload;

  nn::BenchmarkModel tiny{"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
  edge::AppBundle app = core::make_benchmark_app(tiny, /*partial=*/false);

  core::RuntimeConfig config;
  config.click_at = core::after_ack_click_time(*app.network, false, 0, 30e6);

  // Turn the supervisor on and stand up a failover server. Hedging is
  // off here so the demo rides the full breaker-and-failover path; with
  // the default 8 s hedge the local run would win the race instead.
  config.client.supervisor.enabled = true;
  config.client.supervisor.hedge_after = sim::SimTime::zero();
  config.fleet.spares = 1;

  // The hostile environment: 5% of messages suffer a fault in each
  // direction, and the primary server crashes 1 ms after the click and
  // stays down for 30 s — longer than any deadline is willing to wait.
  fault::FaultPlanConfig faults = fault::FaultPlanConfig::uniform(0.05, 7);
  fault::CrashSpec crash;
  crash.first_at = config.click_at + sim::SimTime::millis(1);
  crash.downtime = sim::SimTime::seconds(30);
  faults.crashes.push_back(crash);
  config.faults = faults;

  core::OffloadingRuntime runtime(config, std::move(app));
  core::RunResult result = runtime.run();

  std::printf("result on screen:  \"%s\"\n", result.result_text.c_str());
  std::printf("inference time:    %s (click -> result)\n",
              util::format_seconds(result.inference_seconds).c_str());
  std::printf("offloaded:         %s%s\n", result.offloaded ? "yes" : "no",
              result.timeline.server_index == 1 ? " (spare server)" : "");
  std::printf("local fallback:    %s\n",
              result.timeline.local_fallback ? "yes" : "no");

  const edge::SupervisorStats& sup = runtime.client().supervisor_stats();
  std::printf("\nWhat the supervisor did:\n");
  std::printf("  deadline expiries   %d\n", sup.deadline_expiries);
  std::printf("  snapshot retries    %d\n", sup.retries);
  std::printf("  backoff wait        %s\n",
              util::format_seconds(sup.backoff_wait_s).c_str());
  std::printf("  breaker opens       %d\n", sup.breaker_opens);
  std::printf("  failovers           %d\n", sup.failovers);
  std::printf("  model re-presends   %d\n", sup.model_represends);
  std::printf("  hedges started      %d (local wins: %d, remote wins: %d)\n",
              sup.hedges_started, sup.hedge_local_wins,
              sup.hedge_remote_wins);

  if (fault::FaultPlan* plan = runtime.fault_plan()) {
    const fault::FaultPlan::Stats& fs = plan->stats();
    std::printf("\nWhat the fault plan injected:\n");
    std::printf("  attempts consulted  %llu\n",
                static_cast<unsigned long long>(fs.consulted));
    std::printf("  drops               %llu\n",
                static_cast<unsigned long long>(fs.drops));
    std::printf("  duplicates          %llu\n",
                static_cast<unsigned long long>(fs.duplicates));
    std::printf("  corruptions         %llu\n",
                static_cast<unsigned long long>(fs.corruptions));
    std::printf("  delays              %llu\n",
                static_cast<unsigned long long>(fs.delays));
  }
  std::printf("\nCrashes on the primary: %d (restarts: %d)\n",
              runtime.server().stats().crashes,
              runtime.server().stats().restarts);
  return 0;
}
