// Quickstart: offload one DNN inference from a weak client to an edge
// server with a snapshot, and print what happened.
//
//   ./build/examples/quickstart
//
// Uses the small test CNN so it runs in well under a second.
#include <cstdio>

#include "src/core/offload.h"
#include "src/util/strings.h"
#include "src/util/table.h"

int main() {
  using namespace offload;

  // 1. An app bundle: MicroJS source (the paper's Fig. 2 app), the trained
  //    network, and an input image.
  nn::BenchmarkModel tiny{"TinyCNN", &nn::build_tiny_cnn_default, 17, 32};
  edge::AppBundle app = core::make_benchmark_app(tiny, /*partial=*/false);

  // 2. A runtime: client + 30 Mbps link + edge server.
  core::RuntimeConfig config;
  config.click_at = core::after_ack_click_time(*app.network, false, 0, 30e6);

  core::OffloadingRuntime runtime(config, std::move(app));

  // 3. Run: app starts, pre-sends its model, user clicks, the click
  //    handler's execution migrates to the server and back.
  core::RunResult result = runtime.run();

  std::printf("offloaded:        %s\n", result.offloaded ? "yes" : "no");
  std::printf("result on screen: \"%s\"\n", result.result_text.c_str());
  std::printf("inference time:   %s (click -> result)\n",
              util::format_seconds(result.inference_seconds).c_str());
  std::printf("model pre-send:   %s (app start -> ACK)\n",
              util::format_seconds(result.model_upload_seconds).c_str());
  std::printf("snapshot size:    %s (%s without the feature data)\n",
              util::format_bytes(static_cast<double>(
                  result.timeline.snapshot_stats.total_bytes)).c_str(),
              util::format_bytes(static_cast<double>(
                  result.timeline.snapshot_stats.non_feature_bytes()))
                  .c_str());

  std::printf("\nWhere the time went:\n");
  const auto& labels = core::InferenceBreakdown::labels();
  auto values = result.breakdown.values();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (values[i] <= 0) continue;
    std::printf("  %-22s %s\n", labels[i].c_str(),
                util::format_seconds(values[i]).c_str());
  }
  return 0;
}
